// C2 — §2's comparison with traditional distributed query processing:
// "mutant query plans trade away pipelining and parallelism for
// robustness, autonomous optimization at each peer and reduced deployment
// costs."
//
// The same selective query runs as (a) a migrating MQP, (b) a coordinator
// that ships raw collections, (c) a coordinator that pushes selections.
// We report bytes, messages and latency, then repeat with a failed source
// to expose the robustness/latency behaviours.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

constexpr double kCoordinatorTimeout = 8.0;

struct Setup {
  net::Simulator sim;
  workload::GarageSaleNetwork net;
  size_t expected = 0;
};

std::unique_ptr<Setup> Build(size_t sellers, uint64_t seed) {
  auto s = std::make_unique<Setup>();
  workload::GarageSaleNetworkParams params;
  params.num_sellers = sellers;
  params.items_per_seller = 20;
  params.seed = seed;
  s->net = workload::BuildGarageSaleNetwork(&s->sim, params);
  auto pred = algebra::FieldLess("price", "20");
  for (const auto& item : s->net.all_items) {
    if (workload::GarageSaleGenerator::ItemInArea(
            *item, *ns::InterestArea::Parse("(USA,*)")) &&
        pred->EvalBool(*item)) {
      ++s->expected;
    }
  }
  return s;
}

struct Result {
  bool ok = false;
  bool complete = false;
  size_t results = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double latency = 0;
};

Result RunMqp(Setup* s, bool fail_one) {
  if (fail_one) s->sim.Fail(s->net.sellers[0]->id());
  s->sim.stats().Clear();
  auto area = *ns::InterestArea::Parse("(USA,*)");
  Result r;
  auto run = bench::RunAreaQuery(&s->sim, s->net.client, area,
                                 algebra::FieldLess("price", "20"));
  r.ok = run.ok;
  r.messages = run.messages;
  r.bytes = run.bytes;
  if (run.ok) {
    r.complete = run.outcome.complete;
    r.results = run.outcome.items.size();
    r.latency = run.outcome.completed_at - run.outcome.submitted_at;
  } else {
    // The MQP died at the failed peer — the client would have to time out
    // and retry; report the simulated time spent.
    r.latency = s->sim.now();
  }
  if (fail_one) s->sim.Recover(s->net.sellers[0]->id());
  return r;
}

Result RunCoordinator(Setup* s, baseline::Coordinator::Mode mode,
                      bool fail_one) {
  baseline::Coordinator coord(&s->sim, mode, kCoordinatorTimeout);
  for (size_t i = 0; i < s->net.sellers.size(); ++i) {
    coord.AddCatalogEntry(ns::InterestArea(s->net.seller_specs[i].cell),
                          s->net.sellers[i]->address(),
                          "/data[id=c" + std::to_string(i) + "]");
  }
  if (fail_one) s->sim.Fail(s->net.sellers[0]->id());
  s->sim.stats().Clear();
  Result r;
  const double start = s->sim.now();
  coord.Run(
      workload::MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)"),
                                  algebra::FieldLess("price", "20")),
      [&](const baseline::Coordinator::Outcome& o) {
        r.ok = true;
        r.complete = o.complete;
        r.results = o.items.size();
        r.latency = o.finished_at - start;
      });
  s->sim.Run();
  r.messages = s->sim.stats().messages;
  r.bytes = s->sim.stats().bytes;
  if (fail_one) s->sim.Recover(s->net.sellers[0]->id());
  return r;
}

void Print(const char* arch, size_t sellers, const Result& r,
           size_t expected) {
  bench::Row("%6zu %-12s %8s %8zu/%-6zu %7llu %11llu %9.2fs", sellers, arch,
             r.ok ? (r.complete ? "yes" : "partial") : "LOST", r.results,
             expected, static_cast<unsigned long long>(r.messages),
             static_cast<unsigned long long>(r.bytes), r.latency);
}

}  // namespace

int main() {
  bench::Header("C2", "MQP migration vs coordinator-based distributed QP");
  bench::Row("query: select price<20 over [USA, *]; 20 items/seller");

  bench::Row("\n-- all sources healthy --");
  bench::Row("%6s %-12s %8s %15s %7s %11s %9s", "peers", "arch", "answer",
             "results/expect", "msgs", "bytes", "latency");
  for (size_t sellers : {8, 32, 128}) {
    auto s = Build(sellers, 500 + sellers);
    Print("mqp", sellers, RunMqp(s.get(), false), s->expected);
    Print("coord-ship", sellers,
          RunCoordinator(s.get(), baseline::Coordinator::Mode::kShipAll,
                         false),
          s->expected);
    Print("coord-push", sellers,
          RunCoordinator(s.get(),
                         baseline::Coordinator::Mode::kPushSelections,
                         false),
          s->expected);
    bench::Row("%s", "");
  }

  bench::Row("-- one base server failed --");
  bench::Row("%6s %-12s %8s %15s %7s %11s %9s", "peers", "arch", "answer",
             "results/expect", "msgs", "bytes", "latency");
  {
    auto s = Build(32, 532);
    Print("mqp", 32, RunMqp(s.get(), true), s->expected);
    Print("coord-ship", 32,
          RunCoordinator(s.get(), baseline::Coordinator::Mode::kShipAll,
                         true),
          s->expected);
    Print("coord-push", 32,
          RunCoordinator(s.get(),
                         baseline::Coordinator::Mode::kPushSelections,
                         true),
          s->expected);
  }
  bench::Row(
      "\nShape check (paper §2): the coordinator finishes faster (parallel "
      "sub-queries,\npipelined at one site) — the trade MQPs consciously "
      "make; pushing selections\nbeats shipping raw collections on bytes; "
      "the MQP's sequential migration costs\nlatency but needs no omniscient "
      "coordinator. Under failure, the single MQP\ntoken is lost at the dead "
      "peer (client must retry), while the coordinator\nwaits for its "
      "timeout and returns a partial answer.");
  return 0;
}
