// C4 — §4.3: completeness, currency and latency trade-offs.
//
// R replicates S with a delay: base[Portland,*]@R >= base[Portland,*]@S{d}.
// The binding is  R{d} | (R ∪ S){0}  — route to R alone for a fast answer
// that may be d minutes stale, or to both for a current answer at higher
// latency. The query's AnswerPreference picks the branch; a time budget
// forces the fast branch when it runs low.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct RunResult {
  bool ok = false;
  size_t results = 0;
  double latency = 0;
  int staleness_bound = 0;  // max staleness recorded in provenance
  size_t base_visits = 0;
};

RunResult Run(algebra::AnswerPreference pref, int delay_minutes,
           double time_budget, uint64_t seed) {
  net::Simulator sim;
  workload::GarageSaleGenerator gen(seed);
  const std::vector<std::string> fields = {"location", "category"};

  peer::PeerOptions idx_opts;
  idx_opts.name = "index";
  idx_opts.roles.index = true;
  idx_opts.roles.authoritative = true;
  idx_opts.interest = *ns::InterestArea::Parse("(USA.OR,*)");
  idx_opts.dimension_fields = fields;
  peer::Peer index(&sim, idx_opts);

  workload::Seller spec;
  spec.name = "S";
  spec.cell = ns::MakeCell({"USA/OR/Portland", "Music/CDs"});
  auto items = gen.MakeItems(spec, 40);

  auto mk_base = [&](const std::string& name) {
    peer::PeerOptions o;
    o.name = name;
    o.roles.base = true;
    o.dimension_fields = fields;
    auto p = std::make_unique<peer::Peer>(&sim, o);
    p->PublishCollection("c", ns::InterestArea(spec.cell), items);
    p->AddBootstrap(index.address());
    return p;
  };
  auto s_server = mk_base("S");
  auto r_server = mk_base("R");
  // §4.3's statement: R ⊇ S with a delay factor.
  auto st = catalog::IntensionalStatement::Parse(
      "base[(USA.OR.Portland,Music.CDs)]@" + r_server->address() +
      " >= base[(USA.OR.Portland,Music.CDs)]@" + s_server->address() + "{" +
      std::to_string(delay_minutes) + "}");
  r_server->AddOwnStatement(*st);
  s_server->JoinNetwork();
  r_server->JoinNetwork();
  sim.Run();

  peer::PeerOptions copts;
  copts.name = "client";
  copts.dimension_fields = fields;
  peer::Peer client(&sim, copts);
  client.AddBootstrap(index.address());

  auto plan = workload::MakeAreaQueryPlan(
      *ns::InterestArea::Parse("(USA.OR.Portland,Music.CDs)"));
  plan.policy().preference = pref;
  plan.policy().time_budget_seconds = time_budget;

  RunResult r;
  client.SubmitQuery(std::move(plan), [&](const peer::QueryOutcome& o) {
    r.ok = true;
    r.results = o.items.size();
    r.latency = o.completed_at - o.submitted_at;
    r.staleness_bound = o.provenance.MaxStalenessMinutes();
    for (const auto* p : {s_server.get(), r_server.get()}) {
      if (o.provenance.Visited(p->address())) ++r.base_visits;
    }
  });
  sim.Run();
  return r;
}

const char* PrefName(algebra::AnswerPreference p) {
  return p == algebra::AnswerPreference::kCurrent ? "current" : "complete";
}

}  // namespace

int main() {
  bench::Header("C4", "currency vs latency: R{d} | (R + S){0} bindings");
  bench::Row("binding from: base[Portland]@R >= base[Portland]@S{d}");
  bench::Row("%8s %10s %8s %9s %12s %12s", "delay-d", "preference",
             "results", "latency", "staleness", "base-visits");
  for (int delay : {5, 30, 120}) {
    for (auto pref : {algebra::AnswerPreference::kComplete,
                      algebra::AnswerPreference::kCurrent}) {
      RunResult r = Run(pref, delay, /*time_budget=*/0, 400 + delay);
      if (!r.ok) {
        bench::Row("%8d %10s  QUERY DID NOT RETURN", delay, PrefName(pref));
        continue;
      }
      bench::Row("%8d %10s %8zu %8.2fs %9dmin %12zu", delay, PrefName(pref),
                 r.results, r.latency, r.staleness_bound, r.base_visits);
    }
  }
  bench::Row("\n-- with a tight time budget (0.04s), preference=current --");
  {
    RunResult r = Run(algebra::AnswerPreference::kCurrent, 30, 0.04, 999);
    if (r.ok) {
      bench::Row("%8d %10s %8zu %8.2fs %9dmin %12zu", 30, "current+tb",
                 r.results, r.latency, r.staleness_bound, r.base_visits);
    }
  }
  bench::Row(
      "\nShape check (paper §4.3): preferring *current* routes to R ∪ S — "
      "two base\nvisits, staleness bound 0, higher latency; preferring a "
      "fast/complete answer\nroutes to the replica alone — one visit, "
      "latency saved, answer up to d minutes\nstale (the staleness bound "
      "rides along in the provenance). A tight time budget\nforces the "
      "cheap branch even under a currency preference.");
  return 0;
}
