// C3 — §4 Examples 1-3: what intensional statements buy.
//
// Scenario: seller S publishes Portland merchandise; server R replicates
// S (base[Portland,*]@R = base[Portland,*]@S, Example 1). The index server
// knows both. With statements enabled the binding collapses to one server
// ("the MQP could be routed to either R or S, but it need not go to
// both"); without them the union visits both and ships the data twice.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct RunResult {
  bool ok = false;
  size_t results = 0;
  size_t base_visits = 0;
  uint64_t bytes = 0;
  double latency = 0;
};

RunResult Run(bool use_statements, size_t replicas, uint64_t seed) {
  net::Simulator sim;
  workload::GarageSaleGenerator gen(seed);
  const std::vector<std::string> fields = {"location", "category"};

  peer::PeerOptions idx_opts;
  idx_opts.name = "index";
  idx_opts.roles.index = true;
  idx_opts.roles.authoritative = true;
  idx_opts.interest = *ns::InterestArea::Parse("(USA.OR,*)");
  idx_opts.dimension_fields = fields;
  idx_opts.use_intensional_statements = use_statements;
  peer::Peer index(&sim, idx_opts);
  index.catalog().set_use_statements(use_statements);

  // The original holder S and `replicas` exact copies R1..Rk.
  workload::Seller spec;
  spec.name = "S";
  spec.cell = ns::MakeCell({"USA/OR/Portland", "Music/CDs"});
  auto items = gen.MakeItems(spec, 40);

  std::vector<std::unique_ptr<peer::Peer>> bases;
  auto add_base = [&](const std::string& name) -> peer::Peer* {
    peer::PeerOptions o;
    o.name = name;
    o.roles.base = true;
    o.dimension_fields = fields;
    bases.push_back(std::make_unique<peer::Peer>(&sim, o));
    peer::Peer* p = bases.back().get();
    p->PublishCollection("c", ns::InterestArea(spec.cell), items);
    p->AddBootstrap(index.address());
    return p;
  };
  peer::Peer* s_server = add_base("S");
  std::vector<peer::Peer*> r_servers;
  for (size_t i = 0; i < replicas; ++i) {
    peer::Peer* r = add_base("R" + std::to_string(i));
    // Example 1's statement: identical holdings for the area.
    auto st = catalog::IntensionalStatement::Parse(
        "base[(USA.OR.Portland,Music.CDs)]@" + r->address() +
        " = base[(USA.OR.Portland,Music.CDs)]@" + s_server->address());
    if (st.ok()) r->AddOwnStatement(*st);
  }
  for (auto& b : bases) b->JoinNetwork();
  sim.Run();

  peer::PeerOptions copts;
  copts.name = "client";
  copts.dimension_fields = fields;
  peer::Peer client(&sim, copts);
  client.AddBootstrap(index.address());

  sim.stats().Clear();
  auto area = *ns::InterestArea::Parse("(USA.OR.Portland,Music.CDs)");
  auto run = bench::RunAreaQuery(&sim, &client, area);
  RunResult r;
  r.ok = run.ok;
  r.bytes = run.bytes;
  if (run.ok) {
    r.results = run.outcome.items.size();
    r.latency = run.outcome.completed_at - run.outcome.submitted_at;
    for (const auto& b : bases) {
      if (run.outcome.provenance.Visited(b->address())) ++r.base_visits;
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::Header("C3", "intensional statements: redundancy elimination "
                      "(Examples 1-3)");
  bench::Row("scenario: S holds 40 Portland CDs; R1..Rk replicate S "
             "exactly; query the area");
  bench::Row("%9s %11s %9s %12s %11s %9s", "replicas", "statements",
             "results", "base-visits", "bytes", "latency");
  for (size_t replicas : {1, 2, 4}) {
    for (bool stmts : {false, true}) {
      RunResult r = Run(stmts, replicas, 300 + replicas);
      if (!r.ok) {
        bench::Row("%9zu %11s  QUERY DID NOT RETURN", replicas,
                   stmts ? "on" : "off");
        continue;
      }
      bench::Row("%9zu %11s %9zu %12zu %11llu %8.2fs", replicas,
                 stmts ? "on" : "off", r.results, r.base_visits,
                 static_cast<unsigned long long>(r.bytes), r.latency);
    }
  }
  bench::Row(
      "\nShape check (paper §4.2 Example 1): without statements every "
      "replica is visited\nand the result multiplies (duplicates); with "
      "statements the binding collapses to\na single server — one visit, "
      "one copy of the data, lower latency and bytes.");
  return 0;
}
