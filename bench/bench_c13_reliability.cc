// C13 — reliable query execution under injected faults (DESIGN.md §9).
//
// A garage-sale network runs behind a net::FaultInjector applying a
// seeded drop plan plus scheduled seller crash/restart events while a
// client issues a steady stream of interest-area queries. The sweep is
// fault rate {0, 2, 5, 10}% x retry policy {off, on}:
//   * off: the reliability layer is disabled fleet-wide — no deadline on
//     the wire, no retries, no failover; the deadline only reaps the
//     pending entry so every query still returns (ablation baseline),
//   * on: deadline + bounded exponential backoff + alternative-binding
//     failover + duplicate suppression (the full §9 machinery).
// A separate degradation run crashes an in-area seller for longer than
// the query deadline: timed-out queries must still deliver the items
// the surviving sellers answered (QueryOutcome.complete == false with a
// non-empty item set).
//
// Shape checks (enforced, nonzero exit on failure):
//   * >= 99% completion at 5% drop with retries+failover on,
//   * retries-on success strictly above retries-off at 5% drop,
//   * the degradation run delivers at least one partial result.
//
// Flags: --ci shrinks the query count for a CI smoke slot; --json=PATH
// writes BENCH_reliability.json for the workflow artifact.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Cell {
  double drop_rate = 0;
  bool retries = false;
  size_t submitted = 0;
  size_t complete = 0;
  size_t partial = 0;    // returned incomplete but with items
  size_t timed_out = 0;
  uint64_t retries_launched = 0;
  uint64_t failovers = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t fault_drops = 0;
  double p50_latency = 0;  // virtual seconds, completed queries only
  double p99_latency = 0;
  double bytes_per_complete = 0;

  double success_pct() const {
    return submitted == 0 ? 0.0
                          : 100.0 * static_cast<double>(complete) /
                                static_cast<double>(submitted);
  }
};

void SetReliability(workload::GarageSaleNetwork* net, bool enabled) {
  std::vector<peer::Peer*> all;
  all.push_back(net->client);
  all.push_back(net->top_meta);
  all.insert(all.end(), net->index_servers.begin(),
             net->index_servers.end());
  all.insert(all.end(), net->sellers.begin(), net->sellers.end());
  for (peer::Peer* p : all) {
    p->mutable_options().reliability.enabled = enabled;
  }
}

bool SellerInArea(const workload::Seller& s, const ns::InterestArea& area) {
  for (const auto& c : area.cells()) {
    if (c.Covers(s.cell)) return true;
  }
  return false;
}

/// Sellers publishing inside `area`, in network order.
std::vector<size_t> InAreaSellers(const workload::GarageSaleNetwork& net,
                                  const ns::InterestArea& area) {
  std::vector<size_t> idx;
  for (size_t i = 0; i < net.seller_specs.size(); ++i) {
    if (SellerInArea(net.seller_specs[i], area)) idx.push_back(i);
  }
  return idx;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

Cell RunCell(double drop_rate, bool retries, size_t num_queries,
             uint64_t seed) {
  Cell cell;
  cell.drop_rate = drop_rate;
  cell.retries = retries;

  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = seed;
  plan.spec.drop_rate = drop_rate;
  net::FaultInjector fi(&sim, plan);

  workload::GarageSaleNetworkParams params;
  params.num_sellers = 20;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(&fi, params);
  SetReliability(&net, retries);

  const auto area = *ns::InterestArea::Parse("(USA.OR,*)");
  // Crash two in-area sellers mid-run; each restart lands inside the
  // retry budget (deadline 120s > 60s downtime) so retries bridge the
  // outage. The windows are far apart: a query whose deadline spans two
  // back-to-back outages of *different* sellers has no complete answer
  // to find, which would measure the plan, not the retry policy.
  auto in_area = InAreaSellers(net, area);
  if (!in_area.empty()) {
    fi.mutable_plan().crashes.push_back(
        {net.sellers[in_area[0]]->id(), 40.0, 100.0});
  }
  if (in_area.size() > 1) {
    fi.mutable_plan().crashes.push_back(
        {net.sellers[in_area[1]]->id(), 400.0, 460.0});
  }
  fi.Arm();

  std::vector<double> latencies;
  const double interval = 10.0;
  for (size_t q = 0; q < num_queries; ++q) {
    const double at = interval * static_cast<double>(q + 1);
    fi.Schedule(at, [&, at]() {
      ++cell.submitted;
      net.client->SubmitQuery(
          workload::MakeAreaQueryPlan(area),
          [&, at](const peer::QueryOutcome& o) {
            if (o.complete) {
              ++cell.complete;
              latencies.push_back(fi.now() - at);
            } else if (!o.items.empty()) {
              ++cell.partial;
            }
            if (o.timed_out) ++cell.timed_out;
          });
    });
  }
  fi.Run();

  const auto& st = fi.stats();
  cell.retries_launched = st.query_retries;
  cell.failovers = st.failovers;
  cell.duplicates_suppressed = st.duplicates_suppressed;
  cell.fault_drops = st.fault_drops;
  cell.p50_latency = Percentile(latencies, 0.50);
  cell.p99_latency = Percentile(latencies, 0.99);
  cell.bytes_per_complete =
      cell.complete == 0
          ? 0.0
          : static_cast<double>(st.bytes) / static_cast<double>(cell.complete);
  return cell;
}

struct DegradationRun {
  size_t submitted = 0;
  size_t partials_with_items = 0;  // complete=false AND items non-empty
  size_t timed_out = 0;
  uint64_t partials_delivered = 0;  // NetStats counter
};

/// Crashes an in-area seller for longer than the deadline while the
/// others stay up: every query overlapping the outage must time out yet
/// still carry the surviving sellers' items.
DegradationRun RunDegradation(uint64_t seed) {
  DegradationRun run;
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = seed;
  net::FaultInjector fi(&sim, plan);

  workload::GarageSaleNetworkParams params;
  params.num_sellers = 20;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(&fi, params);
  SetReliability(&net, true);

  // Pick a state with at least two sellers so one can crash while the
  // rest keep answering.
  ns::InterestArea area;
  std::vector<size_t> in_area;
  for (const char* a : {"(USA.OR,*)", "(USA.WA,*)", "(USA.CA,*)"}) {
    area = *ns::InterestArea::Parse(a);
    in_area = InAreaSellers(net, area);
    if (in_area.size() >= 2) break;
  }
  if (in_area.size() < 2) return run;  // seed can't express the scenario

  // Down at 20s, back at 400s — far beyond any query's 120s deadline.
  fi.mutable_plan().crashes.push_back(
      {net.sellers[in_area[0]]->id(), 20.0, 400.0});
  fi.Arm();

  for (size_t q = 0; q < 6; ++q) {
    const double at = 30.0 + 10.0 * static_cast<double>(q);
    fi.Schedule(at, [&]() {
      ++run.submitted;
      net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                              [&](const peer::QueryOutcome& o) {
                                if (!o.complete && !o.items.empty()) {
                                  ++run.partials_with_items;
                                }
                                if (o.timed_out) ++run.timed_out;
                              });
    });
  }
  fi.Run();
  run.partials_delivered = fi.stats().partials_delivered;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) ci = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::Header("C13", "reliable query execution: fault rate x retry "
                       "policy sweep over a seeded drop+crash plan");

  const size_t num_queries = ci ? 60 : 120;
  const uint64_t seed = 1300;
  bench::Row("load: 20 sellers, %zu queries @10s, deadline 120s, seeded "
             "drop plan + 2 crash/restart events",
             num_queries);
  bench::Row("  %-7s %-8s %9s %9s %9s %9s %8s %8s %9s %9s %12s",
             "drop", "retries", "complete", "partial", "timeout",
             "success", "retries", "failover", "p50_s", "p99_s",
             "bytes/query");

  std::vector<Cell> cells;
  for (double rate : {0.0, 0.02, 0.05, 0.10}) {
    for (bool retries : {false, true}) {
      Cell c = RunCell(rate, retries, num_queries, seed);
      bench::Row("  %4.0f%%   %-7s %5zu/%-3zu %9zu %9zu %8.1f%% %8llu "
                 "%8llu %9.2f %9.2f %12.0f",
                 100 * c.drop_rate, retries ? "on" : "off", c.complete,
                 c.submitted, c.partial, c.timed_out, c.success_pct(),
                 static_cast<unsigned long long>(c.retries_launched),
                 static_cast<unsigned long long>(c.failovers),
                 c.p50_latency, c.p99_latency, c.bytes_per_complete);
      cells.push_back(c);
    }
  }

  DegradationRun deg = RunDegradation(seed);
  bench::Row("");
  bench::Row("degradation (in-area seller down past every deadline): "
             "%zu queries, %zu timed out, %zu delivered partial items "
             "(net counter %llu)",
             deg.submitted, deg.timed_out, deg.partials_with_items,
             static_cast<unsigned long long>(deg.partials_delivered));

  auto cell_at = [&](double rate, bool retries) -> const Cell& {
    for (const auto& c : cells) {
      if (c.drop_rate == rate && c.retries == retries) return c;
    }
    return cells.front();
  };

  bool shape_ok = true;
  const Cell& on5 = cell_at(0.05, true);
  const Cell& off5 = cell_at(0.05, false);
  if (on5.success_pct() < 99.0) {
    bench::Row("SHAPE FAIL: %.1f%% success at 5%% drop with retries "
               "(need >= 99%%)",
               on5.success_pct());
    shape_ok = false;
  }
  if (on5.complete <= off5.complete) {
    bench::Row("SHAPE FAIL: retries on (%zu complete) not strictly above "
               "retries off (%zu) at 5%% drop",
               on5.complete, off5.complete);
    shape_ok = false;
  }
  for (const auto& c : cells) {
    if (!c.retries) {
      const Cell& on = cell_at(c.drop_rate, true);
      if (on.complete < c.complete) {
        bench::Row("SHAPE FAIL: retries regress success at %.0f%% drop",
                   100 * c.drop_rate);
        shape_ok = false;
      }
    }
  }
  if (deg.partials_with_items == 0 || deg.partials_delivered == 0) {
    bench::Row("SHAPE FAIL: deadline-expired queries delivered no partial "
               "results");
    shape_ok = false;
  }

  bench::Row("");
  bench::Row("shape check: %s", shape_ok ? "OK" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "{\n  \"bench\": \"c13_reliability\",\n");
      std::fprintf(f, "  \"ci\": %s,\n", ci ? "true" : "false");
      std::fprintf(f, "  \"queries_per_cell\": %zu,\n", num_queries);
      std::fprintf(f, "  \"cells\": [\n");
      for (size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        std::fprintf(
            f,
            "    {\"drop_rate\": %.2f, \"retries\": %s, "
            "\"complete\": %zu, \"submitted\": %zu, \"partial\": %zu, "
            "\"timed_out\": %zu, \"success_pct\": %.2f, "
            "\"retries_launched\": %llu, \"failovers\": %llu, "
            "\"duplicates_suppressed\": %llu, \"fault_drops\": %llu, "
            "\"p50_latency\": %.3f, \"p99_latency\": %.3f, "
            "\"bytes_per_complete\": %.1f}%s\n",
            c.drop_rate, c.retries ? "true" : "false", c.complete,
            c.submitted, c.partial, c.timed_out, c.success_pct(),
            static_cast<unsigned long long>(c.retries_launched),
            static_cast<unsigned long long>(c.failovers),
            static_cast<unsigned long long>(c.duplicates_suppressed),
            static_cast<unsigned long long>(c.fault_drops),
            c.p50_latency, c.p99_latency, c.bytes_per_complete,
            i + 1 < cells.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f,
                   "  \"degradation\": {\"submitted\": %zu, "
                   "\"timed_out\": %zu, \"partials_with_items\": %zu, "
                   "\"partials_delivered\": %llu},\n",
                   deg.submitted, deg.timed_out, deg.partials_with_items,
                   static_cast<unsigned long long>(deg.partials_delivered));
      std::fprintf(f, "  \"shape_ok\": %s\n}\n",
                   shape_ok ? "true" : "false");
      std::fclose(f);
      bench::Row("wrote %s", json_path.c_str());
    } else {
      bench::Row("could not open %s", json_path.c_str());
    }
  }
  return shape_ok ? 0 : 1;
}
