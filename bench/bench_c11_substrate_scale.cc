// C11 — million-peer substrate scale (src/net/ scheduler rework,
// DESIGN.md §7).
//
// Part A pins the scheduler claim with an A/B at 100k peers: the same
// deterministic ping workload (a large standing population of in-flight
// messages, every delivery forwarding once) runs under the binary-heap
// reference scheduler and under the calendar queue + event pool, and we
// report events/sec and heap allocations per event for each. Shape
// checks (exit 1 on miss): calendar ≥ 5x heap events/sec, ~0 allocations
// per event on the calendar steady path, and pool hits == events
// scheduled once the pool is warm.
//
// Part B sweeps super-peer hierarchies from 10k to 1M peers (N super
// peers fronting M leaves each, catalog gossip on the root+super tier
// only) under sustained query + gossip load, reporting events/sec,
// substrate bytes/peer, RSS bytes/peer and the per-kind traffic table
// (printed via the interned-kind ForEachSorted — stable order, no map
// rebuilds).
//
// Flags: --ci caps the sweep at 100k peers and shrinks Part A so the
// whole binary fits in a CI smoke slot; --json=PATH writes
// BENCH_substrate.json for the workflow artifact.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "net/simulator.h"
#include "bench_util.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps it,
// so steady-phase deltas measure the true allocations/event of each
// scheduler (handler work included).
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace mqp;

namespace {

double WallSeconds() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

// Resident set size, for the bytes/peer-including-peer-state row.
size_t RssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long total = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<size_t>(resident) * 4096;
}

// --- Part A: scheduler A/B -------------------------------------------------

/// One PeerNode registered `n` times: every delivery forwards a fresh
/// ping to the next peer while the forward budget lasts, and snapshots
/// wall clock / allocation / stats counters at the steady-phase
/// boundaries from *inside* the handler (exact, no polling).
class PingHub : public net::PeerNode {
 public:
  PingHub(net::Simulator* sim, size_t n, uint64_t warm, uint64_t steady)
      : sim_(sim), n_(n), warm_(warm), steady_(steady),
        forwards_left_(warm + steady),
        ping_id_(net::InternKind("ping")) {}

  void HandleMessage(const net::Message& msg) override {
    if (forwards_left_ > 0) {
      --forwards_left_;
      net::Message m;
      m.from = msg.to;
      m.to = static_cast<net::PeerId>((msg.to + 1) % n_);
      m.kind = "ping";     // SSO: no allocation
      m.kind_id = ping_id_;  // pre-interned, like wire::Envelope does
      m.size_bytes = msg.size_bytes;  // chain keeps its phase offset
      sim_->Send(std::move(m));
    }
    ++processed_;
    if (processed_ == warm_) {
      t0_ = WallSeconds();
      allocs0_ = g_allocs.load(std::memory_order_relaxed);
      scheduled0_ = sim_->stats().events_scheduled;
      pool_hits0_ = sim_->stats().event_pool_hits;
    } else if (processed_ == warm_ + steady_) {
      t1_ = WallSeconds();
      allocs1_ = g_allocs.load(std::memory_order_relaxed);
      scheduled1_ = sim_->stats().events_scheduled;
      pool_hits1_ = sim_->stats().event_pool_hits;
    }
  }

  uint64_t processed() const { return processed_; }
  double steady_seconds() const { return t1_ - t0_; }
  uint64_t steady_allocs() const { return allocs1_ - allocs0_; }
  uint64_t steady_scheduled() const { return scheduled1_ - scheduled0_; }
  uint64_t steady_pool_hits() const { return pool_hits1_ - pool_hits0_; }

 private:
  net::Simulator* sim_;
  size_t n_;
  uint64_t warm_, steady_;
  uint64_t forwards_left_;
  net::KindId ping_id_;
  uint64_t processed_ = 0;
  double t0_ = 0, t1_ = 0;
  uint64_t allocs0_ = 0, allocs1_ = 0;
  uint64_t scheduled0_ = 0, scheduled1_ = 0;
  uint64_t pool_hits0_ = 0, pool_hits1_ = 0;
};

struct AbResult {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  uint64_t processed = 0;
  uint64_t messages = 0;
  uint64_t steady_scheduled = 0;
  uint64_t steady_pool_hits = 0;
  uint64_t calendar_resizes = 0;
};

AbResult RunScheduler(bool calendar, size_t peers, size_t standing,
                      uint64_t warm, uint64_t steady) {
  net::Simulator sim;
  sim.set_use_calendar_queue(calendar);
  PingHub hub(&sim, peers, warm, steady);
  for (size_t i = 0; i < peers; ++i) sim.Register(&hub);

  // Standing population: `standing` chains split into 64 size classes
  // (size_bytes sets the transfer term of the latency and is carried
  // along the chain), injected class by class — the shape of a network
  // whose applications each speak their own message size. Delivery times
  // spread over 64 interleaving time lattices, so the scheduler sees a
  // dense multi-modal distribution, not one big tie.
  const size_t class_span = (standing + 63) / 64;
  for (size_t i = 0; i < standing; ++i) {
    net::Message m;
    m.from = static_cast<net::PeerId>(i % peers);
    m.to = static_cast<net::PeerId>((i * 7 + 1) % peers);
    m.kind = "ping";
    m.size_bytes = 64 + (i / class_span) * 64;
    sim.Send(std::move(m));
  }
  sim.Run();

  AbResult r;
  r.processed = hub.processed();
  r.messages = sim.stats().messages;
  r.events_per_sec =
      hub.steady_seconds() > 0 ? steady / hub.steady_seconds() : 0;
  r.allocs_per_event =
      static_cast<double>(hub.steady_allocs()) / static_cast<double>(steady);
  r.steady_scheduled = hub.steady_scheduled();
  r.steady_pool_hits = hub.steady_pool_hits();
  r.calendar_resizes = sim.stats().calendar_resizes;
  return r;
}

// --- Part B: super-peer sweep ----------------------------------------------

struct SweepPoint {
  const char* label;
  size_t supers;
  size_t leaves_per_super;
};

struct SweepResult {
  std::string label;
  size_t peers = 0;
  double build_seconds = 0;
  uint64_t build_events = 0;
  double load_seconds = 0;
  uint64_t load_events = 0;
  double load_events_per_sec = 0;
  size_t queries = 0;
  size_t queries_ok = 0;
  size_t substrate_bytes_per_peer = 0;
  size_t rss_bytes_per_peer = 0;
  double pool_hit_rate = 0;
  uint64_t calendar_resizes = 0;
  std::vector<std::pair<std::string, uint64_t>> kinds;
};

SweepResult RunSweepPoint(const SweepPoint& pt) {
  const size_t kCities = 16;
  net::Simulator sim;
  workload::SuperPeerNetworkParams params;
  params.num_super_peers = pt.supers;
  params.leaves_per_super = pt.leaves_per_super;
  params.cities_per_super = kCities;
  params.categories = 8;
  params.items_per_leaf = 1;
  params.seed = 7;
  params.sync_catalog_tier = true;
  params.sync.gossip_interval_seconds = 5;
  params.sync.fanout = 1;
  params.sync.entry_ttl_seconds = 600;
  params.sync.refresh_interval_seconds = 60;
  params.sync.horizon_seconds = 120;  // bounded gossip window

  SweepResult r;
  r.label = pt.label;

  const double rss0 = static_cast<double>(RssBytes());
  const double build_t0 = WallSeconds();
  auto net = workload::BuildSuperPeerNetwork(&sim, params);
  r.build_seconds = WallSeconds() - build_t0;
  r.build_events = sim.stats().events_scheduled;
  r.peers = sim.size();

  // Sustained load: city queries round-robin across regions while the
  // catalog tier gossips out its 120-simulated-second window.
  const size_t kQueries = 24;
  const double load_t0 = WallSeconds();
  for (size_t q = 0; q < kQueries; ++q) {
    const size_t s = q % pt.supers;
    const size_t c = (q * 7 + 3) % kCities;
    auto run = bench::RunAreaQuery(&sim, net.client,
                                   workload::SuperPeerCity(s, c));
    // Ground truth is closed-form: leaves of super s in city c.
    size_t expect = 0;
    for (size_t j = c; j < pt.leaves_per_super; j += kCities) ++expect;
    expect *= params.items_per_leaf;
    ++r.queries;
    if (run.ok && run.outcome.complete && run.outcome.items.size() == expect) {
      ++r.queries_ok;
    }
  }
  sim.Run();  // drain any remaining gossip ticks
  r.load_seconds = WallSeconds() - load_t0;
  r.load_events = sim.stats().events_scheduled - r.build_events;
  r.load_events_per_sec =
      r.load_seconds > 0 ? r.load_events / r.load_seconds : 0;

  r.substrate_bytes_per_peer = sim.SubstrateBytes() / sim.size();
  const double rss1 = static_cast<double>(RssBytes());
  r.rss_bytes_per_peer =
      rss1 > rss0 ? static_cast<size_t>((rss1 - rss0) / sim.size()) : 0;
  r.pool_hit_rate =
      sim.stats().events_scheduled
          ? static_cast<double>(sim.stats().event_pool_hits) /
                static_cast<double>(sim.stats().events_scheduled)
          : 0;
  r.calendar_resizes = sim.stats().calendar_resizes;
  sim.stats().messages_by_kind.ForEachSorted(
      [&](std::string_view kind, uint64_t count) {
        r.kinds.emplace_back(std::string(kind), count);
      });
  return r;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) ci = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::Header("C11", "million-peer substrate: calendar queue + event pool "
                       "+ super-peer sweep");

  // --- Part A -------------------------------------------------------------
  // The standing population is what separates the schedulers — the heap
  // pays O(log n) cache-cold levels per pop at depth 8M while the
  // calendar stays ~O(1) — so it is NOT reduced under --ci; only the
  // measured steady phase shrinks.
  const size_t kAbPeers = 100000;
  const size_t kStanding = size_t{1} << 23;  // in-flight messages
  const uint64_t kWarm = ci ? 500000 : 1000000;
  const uint64_t kSteady = ci ? 2000000 : 4000000;

  bench::Row("scheduler A/B: %zu peers, %zu standing messages, steady "
             "phase %llu events",
             kAbPeers, kStanding,
             static_cast<unsigned long long>(kSteady));
  AbResult heap = RunScheduler(false, kAbPeers, kStanding, kWarm, kSteady);
  AbResult cal = RunScheduler(true, kAbPeers, kStanding, kWarm, kSteady);
  const double speedup =
      heap.events_per_sec > 0 ? cal.events_per_sec / heap.events_per_sec : 0;

  bench::Row("  %-14s %14s %16s", "scheduler", "events/sec", "allocs/event");
  bench::Row("  %-14s %14.0f %16.4f", "binary-heap", heap.events_per_sec,
             heap.allocs_per_event);
  bench::Row("  %-14s %14.0f %16.4f", "calendar", cal.events_per_sec,
             cal.allocs_per_event);
  bench::Row("  speedup %.2fx; calendar steady pool hits %llu / scheduled "
             "%llu; resizes %llu",
             speedup, static_cast<unsigned long long>(cal.steady_pool_hits),
             static_cast<unsigned long long>(cal.steady_scheduled),
             static_cast<unsigned long long>(cal.calendar_resizes));

  bool shape_ok = true;
  if (heap.processed != cal.processed || heap.messages != cal.messages) {
    bench::Row("SHAPE FAIL: schedulers diverged (%llu/%llu events, "
               "%llu/%llu messages)",
               static_cast<unsigned long long>(heap.processed),
               static_cast<unsigned long long>(cal.processed),
               static_cast<unsigned long long>(heap.messages),
               static_cast<unsigned long long>(cal.messages));
    shape_ok = false;
  }
  if (speedup < 5.0) {
    bench::Row("SHAPE FAIL: calendar speedup %.2fx < 5x", speedup);
    shape_ok = false;
  }
  if (cal.allocs_per_event > 0.01) {
    bench::Row("SHAPE FAIL: calendar steady path allocates (%.4f/event)",
               cal.allocs_per_event);
    shape_ok = false;
  }
  if (cal.steady_pool_hits != cal.steady_scheduled) {
    bench::Row("SHAPE FAIL: warm pool missed (%llu hits vs %llu scheduled)",
               static_cast<unsigned long long>(cal.steady_pool_hits),
               static_cast<unsigned long long>(cal.steady_scheduled));
    shape_ok = false;
  }

  // --- Part B -------------------------------------------------------------
  std::vector<SweepPoint> sweep = {
      {"10k", 100, 100},
      {"100k", 100, 1000},
  };
  if (!ci) sweep.push_back({"1M", 1000, 1000});

  std::vector<SweepResult> results;
  bench::Row("");
  bench::Row("  %-6s %9s %9s %11s %13s %11s %9s %8s", "sweep", "peers",
             "build_s", "events/sec", "subst_B/peer", "rss_B/peer",
             "queries", "pool%");
  for (const auto& pt : sweep) {
    SweepResult r = RunSweepPoint(pt);
    bench::Row("  %-6s %9zu %9.2f %11.0f %13zu %11zu %6zu/%-2zu %7.1f%%",
               r.label.c_str(), r.peers, r.build_seconds,
               r.load_events_per_sec, r.substrate_bytes_per_peer,
               r.rss_bytes_per_peer, r.queries_ok, r.queries,
               100.0 * r.pool_hit_rate);
    if (r.queries_ok != r.queries) {
      bench::Row("SHAPE FAIL: %zu/%zu queries wrong at %s", r.queries_ok,
                 r.queries, r.label.c_str());
      shape_ok = false;
    }
    results.push_back(std::move(r));
  }
  // Per-kind traffic of the largest point, in stable interned order.
  if (!results.empty()) {
    bench::Row("");
    bench::Row("  per-kind traffic at %s:", results.back().label.c_str());
    for (const auto& [kind, count] : results.back().kinds) {
      bench::Row("    %-16s %12llu", kind.c_str(),
                 static_cast<unsigned long long>(count));
    }
  }

  bench::Row("");
  bench::Row("shape check: %s", shape_ok ? "OK" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "{\n  \"bench\": \"c11_substrate_scale\",\n");
      std::fprintf(f, "  \"ci\": %s,\n", ci ? "true" : "false");
      std::fprintf(f,
                   "  \"scheduler_ab\": {\"peers\": %zu, \"standing\": %zu, "
                   "\"steady_events\": %llu,\n",
                   kAbPeers, kStanding,
                   static_cast<unsigned long long>(kSteady));
      std::fprintf(f,
                   "    \"heap_events_per_sec\": %.0f, "
                   "\"calendar_events_per_sec\": %.0f, \"speedup\": %.3f,\n",
                   heap.events_per_sec, cal.events_per_sec, speedup);
      std::fprintf(f,
                   "    \"heap_allocs_per_event\": %.4f, "
                   "\"calendar_allocs_per_event\": %.4f,\n",
                   heap.allocs_per_event, cal.allocs_per_event);
      std::fprintf(f,
                   "    \"steady_pool_hits\": %llu, \"steady_scheduled\": "
                   "%llu, \"calendar_resizes\": %llu},\n",
                   static_cast<unsigned long long>(cal.steady_pool_hits),
                   static_cast<unsigned long long>(cal.steady_scheduled),
                   static_cast<unsigned long long>(cal.calendar_resizes));
      std::fprintf(f, "  \"sweep\": [\n");
      for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"peers\": %zu, "
                     "\"build_seconds\": %.3f, \"build_events\": %llu, "
                     "\"load_events_per_sec\": %.0f, "
                     "\"substrate_bytes_per_peer\": %zu, "
                     "\"rss_bytes_per_peer\": %zu, \"queries\": %zu, "
                     "\"queries_ok\": %zu, \"pool_hit_rate\": %.4f, "
                     "\"calendar_resizes\": %llu, \"kinds\": {",
                     JsonEscape(r.label).c_str(), r.peers, r.build_seconds,
                     static_cast<unsigned long long>(r.build_events),
                     r.load_events_per_sec, r.substrate_bytes_per_peer,
                     r.rss_bytes_per_peer, r.queries, r.queries_ok,
                     r.pool_hit_rate,
                     static_cast<unsigned long long>(r.calendar_resizes));
        for (size_t k = 0; k < r.kinds.size(); ++k) {
          std::fprintf(f, "%s\"%s\": %llu", k ? ", " : "",
                       JsonEscape(r.kinds[k].first).c_str(),
                       static_cast<unsigned long long>(r.kinds[k].second));
        }
        std::fprintf(f, "}}%s\n", i + 1 < results.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"shape_ok\": %s\n}\n",
                   shape_ok ? "true" : "false");
      std::fclose(f);
      bench::Row("wrote %s", json_path.c_str());
    } else {
      bench::Row("could not open %s", json_path.c_str());
      shape_ok = false;
    }
  }
  return shape_ok ? 0 : 1;
}
