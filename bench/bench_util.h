// Shared helpers for the paper-reproduction bench harness.
//
// Each bench binary regenerates one figure or claim of the paper (see
// DESIGN.md §4 for the experiment index) and prints paper-style rows.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "mqp/mqp.h"

namespace mqp::bench {

/// Prints a bench header naming the experiment and the paper artifact.
inline void Header(const char* experiment_id, const char* description) {
  std::printf("\n=== %s: %s ===\n", experiment_id, description);
}

/// printf-style row output (stdout, flushed so `tee` captures order).
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

/// Runs one interest-area query against a garage-sale network and waits
/// for the result. Returns the outcome; `ok` is false if the query never
/// returned.
struct QueryRun {
  bool ok = false;
  peer::QueryOutcome outcome;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

inline QueryRun RunAreaQuery(net::Transport* sim, peer::Peer* client,
                             const ns::InterestArea& area,
                             algebra::ExprPtr predicate = nullptr) {
  QueryRun run;
  const uint64_t msgs0 = sim->stats().messages;
  const uint64_t bytes0 = sim->stats().bytes;
  client->SubmitQuery(workload::MakeAreaQueryPlan(area, predicate),
                      [&](const peer::QueryOutcome& o) {
                        run.outcome = o;
                        run.ok = true;
                      });
  sim->Run();
  run.messages = sim->stats().messages - msgs0;
  run.bytes = sim->stats().bytes - bytes0;
  return run;
}

}  // namespace mqp::bench
