// C12 — multi-threaded execution runtime (src/runtime/, DESIGN.md §8).
//
// The same garage-sale network and multi-client query load runs on the
// deterministic simulator and on runtime::ThreadedRuntime at 1/2/4/8
// worker threads. Every backend must resolve every query completely and
// return the identical item count (the correctness shape check); the
// scaling claim — ≥3x queries/sec at 8 workers over 1 — is enforced
// only when the hardware can express it (hardware_concurrency() ≥ 8);
// on smaller machines the speedup row is report-only, because a 1-core
// container cannot distinguish a scheduler from a serializer.
//
// Flags: --ci shrinks the load for a CI smoke slot; --json=PATH writes
// BENCH_runtime.json for the workflow artifact.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/simulator.h"
#include "runtime/threaded_runtime.h"
#include "bench_util.h"

using namespace mqp;

namespace {

double WallSeconds() {
  using namespace std::chrono;
  return duration_cast<duration<double>>(
             steady_clock::now().time_since_epoch())
      .count();
}

struct LoadParams {
  size_t num_sellers = 32;
  size_t items_per_seller = 8;
  size_t num_clients = 8;
  size_t queries_per_client = 8;
  uint64_t seed = 11;
};

struct BackendResult {
  std::string label;
  double build_seconds = 0;
  double load_seconds = 0;
  size_t queries = 0;
  size_t queries_ok = 0;
  size_t items_per_query = 0;
  double queries_per_sec = 0;
};

/// Builds the network on `transport`, attaches `num_clients` extra
/// client peers, schedules every query at one virtual instant (so the
/// fan-out is a single parallel drain on the threaded backend) and runs
/// to quiescence.
BackendResult RunBackend(net::Transport* transport, const char* label,
                         const LoadParams& p) {
  BackendResult r;
  r.label = label;

  workload::GarageSaleNetworkParams net_params;
  net_params.num_sellers = p.num_sellers;
  net_params.items_per_seller = p.items_per_seller;
  net_params.seed = p.seed;

  const double build_t0 = WallSeconds();
  auto net = workload::BuildGarageSaleNetwork(transport, net_params);
  r.build_seconds = WallSeconds() - build_t0;

  std::vector<std::unique_ptr<peer::Peer>> clients;
  for (size_t c = 0; c < p.num_clients; ++c) {
    peer::PeerOptions opts;
    opts.name = "bench-client-" + std::to_string(c);
    opts.dimension_fields = {"location", "category"};
    opts.interest = ns::InterestArea(
        ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
    clients.push_back(
        std::make_unique<peer::Peer>(transport, opts));
    clients.back()->AddBootstrap(net.top_meta->address());
  }

  const size_t expect = net.all_items.size();
  r.items_per_query = expect;
  const auto everything = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));

  std::atomic<size_t> ok{0};
  const double when = transport->now();
  const double load_t0 = WallSeconds();
  for (auto& client : clients) {
    peer::Peer* cp = client.get();
    for (size_t q = 0; q < p.queries_per_client; ++q) {
      ++r.queries;
      transport->ScheduleFor(cp->id(), when, [cp, &ok, expect,
                                              &everything] {
        cp->SubmitQuery(workload::MakeAreaQueryPlan(everything),
                        [&ok, expect](const peer::QueryOutcome& o) {
                          if (o.complete && o.items.size() == expect) {
                            ok.fetch_add(1, std::memory_order_relaxed);
                          }
                        });
      });
    }
  }
  transport->Run();
  r.load_seconds = WallSeconds() - load_t0;
  r.queries_ok = ok.load();
  r.queries_per_sec =
      r.load_seconds > 0 ? r.queries / r.load_seconds : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) ci = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::Header("C12", "threaded runtime: multi-client query throughput "
                       "vs the deterministic simulator");

  LoadParams p;
  if (ci) {
    p.num_sellers = 12;
    p.items_per_seller = 4;
    p.num_clients = 4;
    p.queries_per_client = 4;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  bench::Row("load: %zu sellers x %zu items, %zu clients x %zu queries; "
             "hardware_concurrency=%u",
             p.num_sellers, p.items_per_seller, p.num_clients,
             p.queries_per_client, hw);

  std::vector<BackendResult> results;
  {
    net::Simulator sim;
    results.push_back(RunBackend(&sim, "simulator", p));
  }
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    runtime::ThreadedRuntime rt(
        runtime::RuntimeOptions{.num_threads = threads});
    std::string label = "threaded-" + std::to_string(threads);
    results.push_back(RunBackend(&rt, label.c_str(), p));
    rt.Shutdown();
  }

  bench::Row("  %-12s %9s %9s %12s %14s", "backend", "build_s", "load_s",
             "queries/sec", "ok/queries");
  for (const auto& r : results) {
    bench::Row("  %-12s %9.3f %9.3f %12.1f %9zu/%-4zu", r.label.c_str(),
               r.build_seconds, r.load_seconds, r.queries_per_sec,
               r.queries_ok, r.queries);
  }

  bool shape_ok = true;
  const size_t expect_items = results.front().items_per_query;
  for (const auto& r : results) {
    if (r.queries_ok != r.queries) {
      bench::Row("SHAPE FAIL: %s resolved %zu/%zu queries", r.label.c_str(),
                 r.queries_ok, r.queries);
      shape_ok = false;
    }
    if (r.items_per_query != expect_items) {
      bench::Row("SHAPE FAIL: %s returned %zu items/query vs %zu",
                 r.label.c_str(), r.items_per_query, expect_items);
      shape_ok = false;
    }
  }

  const double qps1 = results[1].queries_per_sec;   // threaded-1
  const double qps8 = results.back().queries_per_sec;  // threaded-8
  const double speedup = qps1 > 0 ? qps8 / qps1 : 0;
  const bool scaling_enforced = hw >= 8;
  bench::Row("  threaded 8v1 speedup %.2fx (%s: need >= 3x on >= 8 cores)",
             speedup, scaling_enforced ? "ENFORCED" : "report-only");
  if (scaling_enforced && speedup < 3.0) {
    bench::Row("SHAPE FAIL: 8-thread speedup %.2fx < 3x on %u cores",
               speedup, hw);
    shape_ok = false;
  }

  bench::Row("");
  bench::Row("shape check: %s", shape_ok ? "OK" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "{\n  \"bench\": \"c12_runtime\",\n");
      std::fprintf(f, "  \"ci\": %s,\n", ci ? "true" : "false");
      std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
      std::fprintf(f, "  \"scaling_enforced\": %s,\n",
                   scaling_enforced ? "true" : "false");
      std::fprintf(f, "  \"speedup_8v1\": %.3f,\n", speedup);
      std::fprintf(f, "  \"backends\": [\n");
      for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"build_seconds\": %.4f, "
                     "\"load_seconds\": %.4f, \"queries_per_sec\": %.2f, "
                     "\"queries_ok\": %zu, \"queries\": %zu}%s\n",
                     r.label.c_str(), r.build_seconds, r.load_seconds,
                     r.queries_per_sec, r.queries_ok, r.queries,
                     i + 1 < results.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"shape_ok\": %s\n}\n",
                   shape_ok ? "true" : "false");
      std::fclose(f);
    }
  }
  return shape_ok ? 0 : 1;
}
