// F3 — Figure 3: the CD query, end to end.
//
// "Suppose we are looking for CDs for $10 or less in the Portland area" —
// favorite songs ⋈ track listings ⋈ cheap for-sale CDs. We sweep the
// number of sellers and the price cut-off (selectivity) and report result
// counts, simulated latency, hops and bytes moved by the migrating plan.
#include "net/simulator.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Run {
  size_t results = 0;
  size_t hops = 0;
  double latency = 0;
  uint64_t bytes = 0;
  bool complete = false;
};

Run Execute(size_t sellers, const char* max_price) {
  net::Simulator sim;
  workload::CdMarketGenerator gen(2026);
  auto titles = gen.MakeTitles(60);

  peer::PeerOptions idx_opts;
  idx_opts.name = "resolver";
  idx_opts.roles.index = true;
  peer::Peer resolver(&sim, idx_opts);

  std::vector<std::unique_ptr<peer::Peer>> peers;
  for (size_t i = 0; i < sellers; ++i) {
    peer::PeerOptions o;
    o.name = "seller" + std::to_string(i);
    o.roles.base = true;
    peers.push_back(std::make_unique<peer::Peer>(&sim, o));
    peers.back()->PublishNamed("urn:ForSale:Portland-CDs", "cds",
                               gen.MakeSellerCds(titles, o.name, 25));
    peers.back()->AddBootstrap(resolver.address());
    peers.back()->JoinNetwork();
  }
  peer::PeerOptions tl_opts;
  tl_opts.name = "cddb";
  tl_opts.roles.base = true;
  peer::Peer tracklist(&sim, tl_opts);
  auto listings = gen.MakeTrackListings(titles, 4);
  tracklist.PublishNamed("urn:CD:TrackListings", "listings", listings);
  tracklist.AddBootstrap(resolver.address());
  tracklist.JoinNetwork();
  sim.Run();

  peer::PeerOptions copts;
  copts.name = "client";
  peer::Peer client(&sim, copts);
  client.AddBootstrap(resolver.address());
  auto favorites = gen.MakeFavoriteSongs(listings, 15);

  sim.stats().Clear();
  Run run;
  bool done = false;
  client.SubmitQuery(
      workload::MakeFigure3Plan(favorites, "urn:ForSale:Portland-CDs",
                                "urn:CD:TrackListings", "", max_price),
      [&](const peer::QueryOutcome& o) {
        run.results = o.items.size();
        run.hops = o.provenance.HopCount();
        run.latency = o.completed_at - o.submitted_at;
        run.complete = o.complete;
        done = true;
      });
  sim.Run();
  run.bytes = sim.stats().bytes;
  if (!done) run.complete = false;
  return run;
}

}  // namespace

int main() {
  bench::Header("F3", "Figure 3 CD query (favorites x listings x cheap CDs)");
  bench::Row("%8s %10s %9s %6s %9s %10s %9s", "sellers", "max-price",
             "results", "hops", "latency", "bytes", "complete");
  for (size_t sellers : {2, 4, 8, 16}) {
    for (const char* price : {"6", "10", "20"}) {
      Run r = Execute(sellers, price);
      bench::Row("%8zu %10s %9zu %6zu %8.2fs %10llu %9s", sellers, price,
                 r.results, r.hops, r.latency,
                 static_cast<unsigned long long>(r.bytes),
                 r.complete ? "yes" : "NO");
    }
  }
  bench::Row("\nShape check (paper): latency and bytes grow with the number "
             "of sellers the plan\nmust visit (MQPs trade pipelining for "
             "coordination freedom); higher price cut-offs\ncarry more "
             "matching CDs in the migrating plan.");
  return 0;
}
