// C15 — overload protection under a flash crowd (DESIGN.md §11).
//
// A flash crowd aims interest-area queries at one hot state of a
// garage-sale network whose peers run the virtual service-time model
// (service_rate_qps), sweeping offered load {1, 2, 4, 10}x the
// calibrated capacity crossed with protection {on, ablated}:
//   * on: client-side admission control, priority-aware RED shedding at
//     the loaded peers, per-query evaluation budgets and cooperative
//     cancellation — the full §11 stack,
//   * ablated: OverloadOptions::enabled = false fleet-wide (the per-peer
//     face of peer::set_use_overload_protection) — the fleet is exactly
//     as slow, just undefended: the backlog grows without bound and
//     queries complete only until queueing delay crosses the deadline.
// 5% of the crowd is submitted at PlanPolicy::priority 1; shedding is
// supposed to spend the shortfall on the best-effort slice so the
// high-priority one keeps completing even at 10x.
//
// Shape checks (enforced, nonzero exit on failure):
//   * >= 95% high-priority completion at 10x with protection on,
//   * protected goodput strictly above ablated at every overload level
//     (>1x; >= at 1x, where both are uncongested),
//   * protected p99 completion latency at 10x bounded well inside the
//     deadline,
//   * the machinery actually engaged at 10x (sheds > 0, cancels > 0),
//   * no leaked pending entries or top-k sessions anywhere in the fleet
//     after the drain, in every cell,
//   * a same-seed repeat of the 10x protected cell reproduces the
//     decision trace and overload counters bit for bit.
//
// Flags: --ci shrinks the submission window for a CI smoke slot;
// --json=PATH writes BENCH_overload.json for the workflow artifact.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/simulator.h"
#include "workload/flash_crowd.h"
#include "bench_util.h"

using namespace mqp;

namespace {

struct Cell {
  double multiplier = 1;
  bool protection = false;
  workload::FlashCrowdStats st;
  double duration = 0;

  double goodput() const { return st.goodput_qps(duration); }
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

workload::FlashCrowdParams ParamsFor(double multiplier, bool protection,
                                     double duration) {
  workload::FlashCrowdParams p;
  p.seed = 1500;
  p.load_multiplier = multiplier;
  p.protection = protection;
  p.duration_seconds = duration;
  // Engage the whole §11 stack: a loose client admission cap (the
  // deadline-parked best-effort backlog tops out well above it at 10x),
  // a tight shed watermark so even the worst-case admitted path — every
  // hop's queue at the watermark — lands inside the deadline, and row
  // budgets scaled to the remaining deadline.
  p.overload.max_pending_queries = 256;
  p.overload.shed_delay_seconds = 1.0;
  p.overload.budget_rows_per_second = 5000;
  return p;
}

Cell RunCell(double multiplier, bool protection, double duration) {
  Cell cell;
  cell.multiplier = multiplier;
  cell.protection = protection;
  cell.duration = duration;

  net::Simulator sim;
  workload::FlashCrowdScenario scenario(&sim,
                                        ParamsFor(multiplier, protection,
                                                  duration));
  cell.st = scenario.Run();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) ci = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  bench::Header("C15", "overload protection: offered load x protection "
                       "sweep over a flash crowd");

  const double duration = ci ? 40.0 : 60.0;
  const double deadline = workload::FlashCrowdParams{}.query_deadline_seconds;
  bench::Row("load: capacity 8 qps, per-peer service 10 qps, %gs window, "
             "deadline %gs, 5%% high-priority",
             duration, deadline);
  bench::Row("  %-5s %-5s %11s %7s %7s %7s %9s %8s %7s %7s %7s %7s",
             "load", "prot", "complete", "shed", "rshed", "timeout",
             "hp_done", "goodput", "p50_s", "p99_s", "cancel", "abort");

  std::vector<Cell> cells;
  for (double m : {1.0, 2.0, 4.0, 10.0}) {
    for (bool prot : {false, true}) {
      Cell c = RunCell(m, prot, duration);
      const auto& s = c.st;
      bench::Row("  %3.0fx  %-5s %5zu/%-5zu %7zu %7llu %7zu %4zu/%-4zu "
                 "%7.2f %7.2f %7.2f %7llu %7llu",
                 m, prot ? "on" : "off", s.complete, s.submitted, s.shed,
                 static_cast<unsigned long long>(s.queries_shed),
                 s.timed_out, s.hp_complete, s.hp_submitted, c.goodput(),
                 Percentile(s.latencies, 0.50), Percentile(s.latencies, 0.99),
                 static_cast<unsigned long long>(s.cancels_sent),
                 static_cast<unsigned long long>(s.budget_aborts));
      cells.push_back(std::move(c));
    }
  }

  auto cell_at = [&](double m, bool prot) -> const Cell& {
    for (const auto& c : cells) {
      if (c.multiplier == m && c.protection == prot) return c;
    }
    return cells.front();
  };

  bool shape_ok = true;
  const Cell& hot = cell_at(10.0, true);

  if (hot.st.hp_completion_pct() < 95.0) {
    bench::Row("SHAPE FAIL: %.1f%% high-priority completion at 10x with "
               "protection on (need >= 95%%)",
               hot.st.hp_completion_pct());
    shape_ok = false;
  }
  for (double m : {1.0, 2.0, 4.0, 10.0}) {
    const Cell& on = cell_at(m, true);
    const Cell& off = cell_at(m, false);
    const bool ok = m > 1.0 ? on.st.complete > off.st.complete
                            : on.st.complete >= off.st.complete;
    if (!ok) {
      bench::Row("SHAPE FAIL: protected goodput (%zu complete) not %s "
                 "ablated (%zu) at %.0fx",
                 on.st.complete, m > 1.0 ? "strictly above" : "at least",
                 off.st.complete, m);
      shape_ok = false;
    }
  }
  const double hot_p99 = Percentile(hot.st.latencies, 0.99);
  if (hot.st.complete == 0 || hot_p99 > 0.9 * deadline) {
    bench::Row("SHAPE FAIL: protected p99 at 10x is %.2fs (need > 0 "
               "completions and p99 <= %.1fs)",
               hot_p99, 0.9 * deadline);
    shape_ok = false;
  }
  if (hot.st.queries_shed == 0 || hot.st.cancels_sent == 0) {
    bench::Row("SHAPE FAIL: protection idle at 10x (sheds %llu, cancels "
               "%llu) — the crowd never tripped the defenses",
               static_cast<unsigned long long>(hot.st.queries_shed),
               static_cast<unsigned long long>(hot.st.cancels_sent));
    shape_ok = false;
  }
  for (const auto& c : cells) {
    if (c.st.leaked_pending != 0 || c.st.leaked_sessions != 0) {
      bench::Row("SHAPE FAIL: %zu pending entries / %zu top-k sessions "
                 "leaked at %.0fx prot=%s",
                 c.st.leaked_pending, c.st.leaked_sessions, c.multiplier,
                 c.protection ? "on" : "off");
      shape_ok = false;
    }
  }

  // Same seed, same cell, fresh simulator: every shed/abort/cancel
  // decision must replay identically.
  Cell repeat = RunCell(10.0, true, duration);
  if (repeat.st.decision_trace != hot.st.decision_trace ||
      repeat.st.queries_shed != hot.st.queries_shed ||
      repeat.st.budget_aborts != hot.st.budget_aborts ||
      repeat.st.cancels_sent != hot.st.cancels_sent ||
      repeat.st.cancelled_sessions_reaped !=
          hot.st.cancelled_sessions_reaped) {
    bench::Row("SHAPE FAIL: same-seed repeat of the 10x protected cell "
               "diverged (trace or counters)");
    shape_ok = false;
  }

  bench::Row("");
  bench::Row("shape check: %s", shape_ok ? "OK" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "{\n  \"bench\": \"c15_overload\",\n");
      std::fprintf(f, "  \"ci\": %s,\n", ci ? "true" : "false");
      std::fprintf(f, "  \"window_seconds\": %.0f,\n", duration);
      std::fprintf(f, "  \"cells\": [\n");
      for (size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        const auto& s = c.st;
        std::fprintf(
            f,
            "    {\"multiplier\": %.0f, \"protection\": %s, "
            "\"submitted\": %zu, \"complete\": %zu, \"shed\": %zu, "
            "\"timed_out\": %zu, \"partial\": %zu, "
            "\"hp_submitted\": %zu, \"hp_complete\": %zu, "
            "\"goodput_qps\": %.2f, \"p50_latency\": %.3f, "
            "\"p99_latency\": %.3f, \"queries_shed\": %llu, "
            "\"budget_aborts\": %llu, \"cancels_sent\": %llu, "
            "\"cancelled_sessions_reaped\": %llu, "
            "\"leaked_pending\": %zu, \"leaked_sessions\": %zu}%s\n",
            c.multiplier, c.protection ? "true" : "false", s.submitted,
            s.complete, s.shed, s.timed_out, s.partial, s.hp_submitted,
            s.hp_complete, c.goodput(), Percentile(s.latencies, 0.50),
            Percentile(s.latencies, 0.99),
            static_cast<unsigned long long>(s.queries_shed),
            static_cast<unsigned long long>(s.budget_aborts),
            static_cast<unsigned long long>(s.cancels_sent),
            static_cast<unsigned long long>(s.cancelled_sessions_reaped),
            s.leaked_pending, s.leaked_sessions,
            i + 1 < cells.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"shape_ok\": %s\n}\n",
                   shape_ok ? "true" : "false");
      std::fclose(f);
      bench::Row("wrote %s", json_path.c_str());
    } else {
      bench::Row("could not open %s", json_path.c_str());
    }
  }
  return shape_ok ? 0 : 1;
}
