#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/xpath.h"

namespace mqp::xml {
namespace {

std::unique_ptr<Node> Doc() {
  auto doc = Parse(R"(
    <store>
      <data id="245">
        <item><name>putter</name><price>45</price></item>
        <item><name>driver</name><price>120</price></item>
      </data>
      <data id="246">
        <item kind="cd"><name>album</name><price>8</price></item>
      </data>
      <misc><deep><item><name>hidden</name></item></deep></misc>
    </store>)");
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

TEST(XPathTest, AbsoluteChildPath) {
  auto doc = Doc();
  auto r = EvalXPath("/store/data", *doc);
  EXPECT_EQ(r.size(), 2u);
}

TEST(XPathTest, RootNameMustMatch) {
  auto doc = Doc();
  EXPECT_TRUE(EvalXPath("/nope/data", *doc).empty());
}

TEST(XPathTest, AttributeEqualityPredicate) {
  auto doc = Doc();
  auto r = EvalXPath("/store/data[@id='245']", *doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->AttrOr("id", ""), "245");
}

TEST(XPathTest, BareNumericAttrPredicate) {
  // The paper writes collection ids as /data[id=245]; a child-element test
  // with no matching child falls back to the attribute of the same name.
  auto doc = Doc();
  auto r = EvalXPath("/store/data[id=246]", *doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->AttrOr("id", ""), "246");
}

TEST(XPathTest, ChildElementShadowsAttributeInPredicate) {
  auto doc = Parse("<r><e id=\"attr\"><id>elem</id></e></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(EvalXPath("/r/e[id='elem']", **doc).size(), 1u);
  EXPECT_TRUE(EvalXPath("/r/e[id='attr']", **doc).empty());
  EXPECT_EQ(EvalXPath("/r/e[@id='attr']", **doc).size(), 1u);
}

TEST(XPathTest, ChildElementComparison) {
  auto doc = Doc();
  auto r = EvalXPath("/store/data/item[price<50]", *doc);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0]->ChildText("name"), "putter");
  EXPECT_EQ(r[1]->ChildText("name"), "album");
}

TEST(XPathTest, NumericNotLexicographicComparison) {
  auto doc = Doc();
  // 120 < 50 lexicographically ("1" < "5") but not numerically.
  auto r = EvalXPath("/store/data/item[price>100]", *doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->ChildText("name"), "driver");
}

TEST(XPathTest, DescendantAxis) {
  auto doc = Doc();
  EXPECT_EQ(EvalXPath("//item", *doc).size(), 4u);
  EXPECT_EQ(EvalXPath("//item[name='hidden']", *doc).size(), 1u);
}

TEST(XPathTest, Wildcard) {
  auto doc = Doc();
  EXPECT_EQ(EvalXPath("/store/*", *doc).size(), 3u);
}

TEST(XPathTest, PositionPredicate) {
  auto doc = Doc();
  auto r = EvalXPath("/store/data[1]", *doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->AttrOr("id", ""), "245");
  r = EvalXPath("/store/data[2]", *doc);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0]->AttrOr("id", ""), "246");
}

TEST(XPathTest, ExistencePredicate) {
  auto doc = Doc();
  EXPECT_EQ(EvalXPath("//item[@kind]", *doc).size(), 1u);
  EXPECT_EQ(EvalXPath("//item[price]", *doc).size(), 3u);
}

TEST(XPathTest, MultiplePredicatesConjoin) {
  auto doc = Doc();
  EXPECT_EQ(EvalXPath("//item[price][name='putter']", *doc).size(), 1u);
  EXPECT_TRUE(EvalXPath("//item[price][name='hidden']", *doc).empty());
}

TEST(XPathTest, EvalStringsAttributesAndText) {
  auto doc = Doc();
  auto xp = XPath::Parse("/store/data/@id");
  ASSERT_TRUE(xp.ok()) << xp.status();
  EXPECT_TRUE(xp->selects_attribute());
  auto vals = xp->EvalStrings(*doc);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], "245");

  auto xp2 = XPath::Parse("//item/name");
  ASSERT_TRUE(xp2.ok());
  auto names = xp2->EvalStrings(*doc);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[3], "hidden");
}

TEST(XPathTest, RelativePathStartsAtChildren) {
  auto doc = Doc();
  // Relative paths use context-node semantics: "data" selects the root's
  // <data> children, not the root itself.
  auto xp = XPath::Parse("data");
  ASSERT_TRUE(xp.ok());
  EXPECT_EQ(xp->Eval(*doc).size(), 2u);
  auto xp2 = XPath::Parse("data/item");
  ASSERT_TRUE(xp2.ok());
  EXPECT_EQ(xp2->Eval(*doc).size(), 3u);
  // "store/data" relative to the <store> element matches nothing (no
  // <store> child inside <store>).
  auto xp3 = XPath::Parse("store/data");
  ASSERT_TRUE(xp3.ok());
  EXPECT_TRUE(xp3->Eval(*doc).empty());
}

TEST(XPathTest, SelfTextPredicate) {
  auto doc = Parse("<l><t>abc</t><t>xyz</t></l>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(EvalXPath("/l/t[.='xyz']", **doc).size(), 1u);
}

TEST(XPathTest, ParseErrors) {
  EXPECT_FALSE(XPath::Parse("").ok());
  EXPECT_FALSE(XPath::Parse("/").ok());
  EXPECT_FALSE(XPath::Parse("/a[").ok());
  EXPECT_FALSE(XPath::Parse("/a[]").ok());
  EXPECT_FALSE(XPath::Parse("/a[x~1]").ok());
  EXPECT_FALSE(XPath::Parse("/@a/b").ok());  // attribute step must be final
  EXPECT_FALSE(XPath::Parse("/a//").ok());
}

TEST(XPathTest, QuotedLiteralWithSpaces) {
  auto doc = Parse("<l><t><n>two words</n></t></l>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(EvalXPath("/l/t[n='two words']", **doc).size(), 1u);
}

}  // namespace
}  // namespace mqp::xml
