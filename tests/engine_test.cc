#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "engine/local_store.h"
#include "engine/operator.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mqp::engine {
namespace {

using algebra::AggFunc;
using algebra::Expr;
using algebra::FieldEquals;
using algebra::FieldGreater;
using algebra::FieldLess;
using algebra::Item;
using algebra::ItemSet;
using algebra::JoinEq;
using algebra::PlanNode;

Item ItemFrom(const std::string& text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return Item(std::move(doc).value().release());
}

ItemSet Cds() {
  return {
      ItemFrom("<cd><title>Kind of Blue</title><price>8</price></cd>"),
      ItemFrom("<cd><title>Blue Train</title><price>12</price></cd>"),
      ItemFrom("<cd><title>Giant Steps</title><price>9</price></cd>"),
      ItemFrom("<cd><title>Kind of Blue</title><price>15</price></cd>"),
  };
}

TEST(EngineTest, DataScanYieldsAll) {
  auto r = Evaluate(*PlanNode::XmlData(Cds()));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 4u);
}

TEST(EngineTest, SelectFilters) {
  auto plan = PlanNode::Select(FieldLess("price", "10"),
                               PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0]->ChildText("title"), "Kind of Blue");
  EXPECT_EQ((*r)[1]->ChildText("title"), "Giant Steps");
}

TEST(EngineTest, SelectOnEmptyInput) {
  auto plan = PlanNode::Select(FieldLess("price", "10"),
                               PlanNode::XmlData({}));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(EngineTest, ProjectKeepsListedFields) {
  auto plan = PlanNode::Project({"title"}, PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_NE((*r)[0]->Child("title"), nullptr);
  EXPECT_EQ((*r)[0]->Child("price"), nullptr);
  EXPECT_EQ((*r)[0]->name(), "cd");
}

TEST(EngineTest, HashJoinOnEquiKeys) {
  ItemSet listings = {
      ItemFrom("<l><CDtitle>Kind of Blue</CDtitle><song>So What</song></l>"),
      ItemFrom("<l><CDtitle>Giant Steps</CDtitle><song>Naima</song></l>"),
      ItemFrom("<l><CDtitle>Unknown</CDtitle><song>X</song></l>"),
  };
  auto plan = PlanNode::Join(JoinEq("title", "CDtitle"),
                             PlanNode::XmlData(Cds()),
                             PlanNode::XmlData(listings));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  // "Kind of Blue" appears twice on the left: 2 matches + 1 for Giant Steps.
  ASSERT_EQ(r->size(), 3u);
  // Merged items carry fields of both sides.
  EXPECT_EQ((*r)[0]->ChildText("song"), "So What");
  EXPECT_EQ((*r)[0]->ChildText("price"), "8");
}

TEST(EngineTest, ThetaJoinFallsBackToNestedLoops) {
  ItemSet caps = {ItemFrom("<cap><limit>10</limit></cap>"),
                  ItemFrom("<cap><limit>13</limit></cap>")};
  // price < limit — not an equi join.
  auto cond = Expr::Compare(algebra::CompareOp::kLt,
                            Expr::Field("price", algebra::Side::kLeft),
                            Expr::Field("limit", algebra::Side::kRight));
  auto plan = PlanNode::Join(cond, PlanNode::XmlData(Cds()),
                             PlanNode::XmlData(caps));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  // prices 8,12,9,15 against limits 10,13: 8<10,8<13,12<13,9<10,9<13 = 5
  EXPECT_EQ(r->size(), 5u);
}

TEST(EngineTest, JoinWithEmptySides) {
  auto plan = PlanNode::Join(JoinEq("a", "b"), PlanNode::XmlData({}),
                             PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  plan = PlanNode::Join(JoinEq("a", "b"), PlanNode::XmlData(Cds()),
                        PlanNode::XmlData({}));
  r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(EngineTest, UnionConcatenates) {
  auto plan = PlanNode::Union({PlanNode::XmlData(Cds()),
                               PlanNode::XmlData(Cds()),
                               PlanNode::XmlData({})});
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 8u);
}

TEST(EngineTest, OrEvaluatesFirstAlternative) {
  auto plan = PlanNode::Or({PlanNode::XmlData(Cds()),
                            PlanNode::UrnRef("urn:never:used")});
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 4u);
}

TEST(EngineTest, DifferenceIsMultiset) {
  ItemSet left = {ItemFrom("<i><v>1</v></i>"), ItemFrom("<i><v>1</v></i>"),
                  ItemFrom("<i><v>2</v></i>")};
  ItemSet right = {ItemFrom("<i><v>1</v></i>")};
  auto plan = PlanNode::Difference(PlanNode::XmlData(left),
                                   PlanNode::XmlData(right));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);  // one <v>1</v> survives
  EXPECT_EQ((*r)[0]->ChildText("v"), "1");
  EXPECT_EQ((*r)[1]->ChildText("v"), "2");
}

TEST(EngineTest, AggregateCount) {
  auto plan = PlanNode::Aggregate(AggFunc::kCount, "", "",
                                  PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0]->ChildText("count"), "4");
}

TEST(EngineTest, AggregateCountEmptyInputYieldsZero) {
  auto plan =
      PlanNode::Aggregate(AggFunc::kCount, "", "", PlanNode::XmlData({}));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0]->ChildText("count"), "0");
}

TEST(EngineTest, AggregateSumMinMaxAvg) {
  struct Case {
    AggFunc func;
    const char* name;
    const char* expect;
  } cases[] = {
      {AggFunc::kSum, "sum", "44"},
      {AggFunc::kMin, "min", "8"},
      {AggFunc::kMax, "max", "15"},
      {AggFunc::kAvg, "avg", "11"},
  };
  for (const auto& c : cases) {
    auto plan =
        PlanNode::Aggregate(c.func, "price", "", PlanNode::XmlData(Cds()));
    auto r = Evaluate(*plan);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 1u);
    EXPECT_EQ((*r)[0]->ChildText(c.name), c.expect) << c.name;
  }
}

TEST(EngineTest, AggregateGroupBy) {
  auto plan = PlanNode::Aggregate(AggFunc::kCount, "", "title",
                                  PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);  // three distinct titles
  // Groups come out in deterministic (sorted) order.
  EXPECT_EQ((*r)[0]->ChildText("group"), "Blue Train");
  EXPECT_EQ((*r)[0]->ChildText("count"), "1");
  EXPECT_EQ((*r)[2]->ChildText("group"), "Kind of Blue");
  EXPECT_EQ((*r)[2]->ChildText("count"), "2");
}

TEST(EngineTest, TopNOrdersAndLimits) {
  auto plan = PlanNode::TopN(2, "price", true, PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0]->ChildText("price"), "8");
  EXPECT_EQ((*r)[1]->ChildText("price"), "9");

  plan = PlanNode::TopN(1, "price", false, PlanNode::XmlData(Cds()));
  r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0]->ChildText("price"), "15");
}

TEST(EngineTest, TopNLimitBeyondInput) {
  auto plan = PlanNode::TopN(99, "price", true, PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(EngineTest, DisplayIsTransparent) {
  auto plan = PlanNode::Display("c:1", PlanNode::XmlData(Cds()));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(EngineTest, UnresolvedUrnIsError) {
  auto plan = PlanNode::Select(FieldLess("p", "1"),
                               PlanNode::UrnRef("urn:a:b"));
  auto r = Evaluate(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnresolved);
}

TEST(EngineTest, UrlWithoutSourceIsError) {
  auto plan = PlanNode::Url("somewhere:9020", "");
  auto r = Evaluate(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnresolved);
}

TEST(EngineTest, ComposedPipeline) {
  // select(price<13) -> project(title) -> topn(2, title asc)
  auto plan = PlanNode::TopN(
      2, "title", true,
      PlanNode::Project({"title"}, PlanNode::Select(FieldLess("price", "13"),
                                                    PlanNode::XmlData(Cds()))));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0]->ChildText("title"), "Blue Train");
  EXPECT_EQ((*r)[1]->ChildText("title"), "Giant Steps");
}

TEST(LocalStoreTest, AddAndFetchByCollectionXPath) {
  LocalStore store;
  store.AddCollection("245", Cds());
  EXPECT_EQ(store.TotalItems(), 4u);
  EXPECT_EQ(store.CollectionIds(), std::vector<std::string>{"245"});

  auto r = store.Fetch("ignored", "/data[@id=245]");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 4u);

  r = store.Fetch("ignored", "/data[@id=999]");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(LocalStoreTest, EmptyXPathFetchesEverything) {
  LocalStore store;
  store.AddCollection("a", Cds());
  store.AddCollection("b", {ItemFrom("<x/>")});
  auto r = store.Fetch("", "");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(LocalStoreTest, DeepXPathSelectsElements) {
  LocalStore store;
  store.AddCollection("245", Cds());
  auto r = store.Fetch("", "/data[@id=245]/cd[price<10]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(LocalStoreTest, ReplaceAndRemove) {
  LocalStore store;
  store.AddCollection("c", Cds());
  store.ReplaceCollection("c", {ItemFrom("<only/>")});
  EXPECT_EQ(store.ItemsOf("c").size(), 1u);
  store.RemoveCollection("c");
  EXPECT_EQ(store.TotalItems(), 0u);
  store.RemoveCollection("c");  // idempotent
}

TEST(LocalStoreTest, AddAppendsToExistingCollection) {
  LocalStore store;
  store.AddCollection("c", {ItemFrom("<a/>")});
  store.AddCollection("c", {ItemFrom("<b/>")});
  EXPECT_EQ(store.ItemsOf("c").size(), 2u);
}

TEST(LocalStoreTest, UrlLeafEvaluatesThroughStore) {
  LocalStore store;
  store.AddCollection("245", Cds());
  auto plan = PlanNode::Select(
      FieldLess("price", "10"),
      PlanNode::Url("local:9020", "/data[@id=245]"));
  auto r = Evaluate(*plan, &store);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
}

TEST(LocalStoreTest, CollectionXPathHelper) {
  EXPECT_EQ(LocalStore::CollectionXPath("245"), "/data[@id='245']");
  // Ids with XPath metacharacters survive quoting.
  EXPECT_EQ(LocalStore::CollectionXPath("a]b c"), "/data[@id='a]b c']");
  EXPECT_EQ(LocalStore::CollectionXPath("it's"), "/data[@id=\"it's\"]");
}

TEST(LocalStoreTest, HostileCollectionIdsRoundTrip) {
  // The satellite fix: ids containing ']', quotes, spaces or separators
  // used to be spliced into the xpath unescaped and broke the parse.
  for (const std::string id :
       {"a]b", "it's", "with space", "replica:10.0.0.5:9020", "0245"}) {
    LocalStore store;
    store.AddCollection(id, Cds());
    auto r = store.Fetch("", LocalStore::CollectionXPath(id));
    ASSERT_TRUE(r.ok()) << id << ": " << r.status();
    EXPECT_EQ(r->size(), 4u) << id;
  }
}

TEST(LocalStoreTest, LegacyUnquotedCollectionXPathStillResolves) {
  LocalStore store;
  store.AddCollection("c0", Cds());
  for (const char* form : {"/data[id=c0]", "/data[@id=c0]", "data[id=c0]",
                           "/data[@id='c0']", "/data[id='c0']"}) {
    auto r = store.Fetch("", form);
    ASSERT_TRUE(r.ok()) << form;
    EXPECT_EQ(r->size(), 4u) << form;
  }
}

TEST(LocalStoreTest, NumericIdEqualityMatchesXPathSemantics) {
  // XPath '=' compares numerically when both sides parse as numbers; the
  // keyed fast path must agree ("0245" matches id "245").
  LocalStore store;
  store.AddCollection("245", Cds());
  auto r = store.Fetch("", "/data[id=0245]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(LocalStoreTest, IdElementItemShadowsAttributeForm) {
  // Legacy "[id=...]" compares the first <id> *child element* when one
  // exists; a collection can be selected by its item text even though
  // its id attribute differs. The keyed fast path must stand aside.
  LocalStore store;
  store.AddCollection("c1", {ItemFrom("<id>5</id>"), ItemFrom("<x/>")});
  auto r = store.Fetch("", "/data[id=5]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // the whole collection, as the document says
  // The attribute-only form is not shadowed.
  r = store.Fetch("", "/data[@id=5]");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(LocalStoreTest, TrailingAttributeStepMatchesDocumentSemantics) {
  // "/data[@id='c0']/@id" applies the @id test to the <data> element
  // (which carries it) and then expands the collection — not to the
  // items. The fast path must defer to the view here.
  LocalStore store;
  store.AddCollection("c0", {ItemFrom("<cd><t>x</t></cd>")});
  auto r = store.Fetch("", "/data[@id='c0']/@id");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(LocalStoreTest, NonElementItemsAreHiddenButStayInTheDocument) {
  // The document model never emitted text-node items (readers walk
  // element children), yet they are part of the <data> element: a
  // "[.=text]" self predicate must still see them.
  LocalStore store;
  store.AddCollection("c", {Item(xml::Node::Text("loose").release()),
                            ItemFrom("<a/>")});
  EXPECT_EQ(store.TotalItems(), 1u);
  EXPECT_EQ(store.ItemsOf("c").size(), 1u);
  auto r = store.Fetch("", "/data[@id='c']");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  r = store.Fetch("", "/data[.='loose']");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);  // matched via the text item; emits <a/>
}

TEST(XPathCompatTest, BareLiteralWithApostropheKeepsLegacyMeaning) {
  // The quote-aware predicate scanner must not treat a quote *inside* a
  // bare literal as a string opener.
  LocalStore store;
  store.AddCollection("it's", Cds());
  auto r = store.Fetch("", "/data[id=it's]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(LocalStoreTest, SharedFetchPerformsZeroClones) {
  LocalStore store;
  store.AddCollection("245", Cds());
  const uint64_t cloned_before = Stats().items_cloned;
  const uint64_t nodes_before = xml::DomNodesBuilt();
  auto r = store.Fetch("", "/data[@id='245']");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
  EXPECT_EQ(Stats().items_cloned, cloned_before);
  EXPECT_EQ(xml::DomNodesBuilt(), nodes_before);
}

}  // namespace
}  // namespace mqp::engine

namespace mqp::engine {
namespace {

using algebra::Item;
using algebra::ItemSet;
using algebra::PlanNode;

Item OuterItemFrom(const std::string& text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return Item(std::move(doc).value().release());
}

TEST(LeftOuterJoinTest, UnmatchedLeftItemsPassThrough) {
  ItemSet left = {
      OuterItemFrom("<a><k>1</k><av>x</av></a>"),
      OuterItemFrom("<a><k>2</k><av>y</av></a>"),
      OuterItemFrom("<a><k>3</k><av>z</av></a>"),
  };
  ItemSet right = {OuterItemFrom("<b><bk>2</bk><bv>m</bv></b>")};
  auto plan = PlanNode::LeftOuterJoin(algebra::JoinEq("k", "bk"),
                                      PlanNode::XmlData(left),
                                      PlanNode::XmlData(right));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 3u);  // all left rows survive
  // Row with k=2 merged b-fields; the others did not.
  int merged = 0;
  for (const auto& item : *r) {
    if (item->Child("bv") != nullptr) {
      ++merged;
      EXPECT_EQ(item->ChildText("k"), "2");
    }
  }
  EXPECT_EQ(merged, 1);
}

TEST(LeftOuterJoinTest, MatchFanoutDuplicatesLeftRow) {
  ItemSet left = {OuterItemFrom("<a><k>1</k></a>")};
  ItemSet right = {OuterItemFrom("<b><bk>1</bk><bv>p</bv></b>"),
                   OuterItemFrom("<b><bk>1</bk><bv>q</bv></b>")};
  auto plan = PlanNode::LeftOuterJoin(algebra::JoinEq("k", "bk"),
                                      PlanNode::XmlData(left),
                                      PlanNode::XmlData(right));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(LeftOuterJoinTest, EmptyRightKeepsAllLeft) {
  ItemSet left = {OuterItemFrom("<a><k>1</k></a>"),
                  OuterItemFrom("<a><k>2</k></a>")};
  auto plan = PlanNode::LeftOuterJoin(algebra::JoinEq("k", "bk"),
                                      PlanNode::XmlData(left),
                                      PlanNode::XmlData({}));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_TRUE((*r)[0]->Equals(*left[0]));
}

TEST(LeftOuterJoinTest, ThetaConditionOuterJoin) {
  ItemSet left = {OuterItemFrom("<a><v>5</v></a>"),
                  OuterItemFrom("<a><v>50</v></a>")};
  ItemSet right = {OuterItemFrom("<b><cap>10</cap></b>")};
  auto cond = algebra::Expr::Compare(
      algebra::CompareOp::kLt,
      algebra::Expr::Field("v", algebra::Side::kLeft),
      algebra::Expr::Field("cap", algebra::Side::kRight));
  auto plan = PlanNode::LeftOuterJoin(cond, PlanNode::XmlData(left),
                                      PlanNode::XmlData(right));
  auto r = Evaluate(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_NE((*r)[0]->Child("cap"), nullptr);  // 5 < 10 merged
  EXPECT_EQ((*r)[1]->Child("cap"), nullptr);  // 50 passes through bare
}

TEST(LeftOuterJoinTest, WireFormatRoundTrip) {
  ItemSet left = {OuterItemFrom("<a><k>1</k></a>")};
  algebra::Plan plan(PlanNode::LeftOuterJoin(
      algebra::JoinEq("k", "bk"), PlanNode::XmlData(left),
      PlanNode::UrnRef("urn:b:data")));
  auto back = algebra::ParsePlan(algebra::SerializePlan(plan));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(plan.root()->Equals(*back->root()));
  EXPECT_EQ(back->root()->type(), algebra::OpType::kLeftOuterJoin);
}

}  // namespace
}  // namespace mqp::engine
