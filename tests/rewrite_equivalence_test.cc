// Property tests: every optimizer rewrite preserves query results.
//
// Random plans are generated over random constant data, each rewrite is
// applied, and both versions are evaluated; results must be identical as
// multisets.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "engine/operator.h"
#include "optimizer/cost.h"
#include "optimizer/evaluable.h"
#include "optimizer/rewrites.h"
#include "xml/writer.h"

namespace mqp::optimizer {
namespace {

using algebra::Expr;
using algebra::ExprPtr;
using algebra::Item;
using algebra::ItemSet;
using algebra::PlanNode;
using algebra::PlanNodePtr;

ItemSet RandomItems(Rng* rng, size_t max_n) {
  ItemSet out;
  const size_t n = rng->NextBelow(max_n + 1);
  for (size_t i = 0; i < n; ++i) {
    auto e = xml::Node::Element("row");
    e->AddElementWithText("k", std::to_string(rng->NextBelow(8)));
    e->AddElementWithText("v", std::to_string(rng->NextBelow(100)));
    out.push_back(Item(e.release()));
  }
  return out;
}

ExprPtr RandomPredicate(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0:
      return algebra::FieldLess("v", std::to_string(rng->NextBelow(100)));
    case 1:
      return algebra::FieldEquals("k", std::to_string(rng->NextBelow(8)));
    case 2:
      return Expr::And(
          algebra::FieldGreater("v", std::to_string(rng->NextBelow(50))),
          algebra::FieldLess("v", std::to_string(50 + rng->NextBelow(50))));
    default:
      return Expr::Or(
          algebra::FieldEquals("k", std::to_string(rng->NextBelow(8))),
          algebra::FieldLess("v", std::to_string(rng->NextBelow(30))));
  }
}

// A random tree of unions/selects/differences over constant data.
PlanNodePtr RandomEvaluablePlan(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.3)) {
    return PlanNode::XmlData(RandomItems(rng, 6));
  }
  switch (rng->NextBelow(3)) {
    case 0:
      return PlanNode::Select(RandomPredicate(rng),
                              RandomEvaluablePlan(rng, depth - 1));
    case 1: {
      std::vector<PlanNodePtr> inputs;
      const size_t n = 2 + rng->NextBelow(2);
      for (size_t i = 0; i < n; ++i) {
        inputs.push_back(RandomEvaluablePlan(rng, depth - 1));
      }
      return PlanNode::Union(std::move(inputs));
    }
    default:
      return PlanNode::Difference(RandomEvaluablePlan(rng, depth - 1),
                                  RandomEvaluablePlan(rng, depth - 1));
  }
}

std::multiset<std::string> Fingerprint(const ItemSet& items) {
  std::multiset<std::string> out;
  for (const auto& item : items) {
    out.insert(xml::Serialize(*item));
  }
  return out;
}

class RewriteEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalence, PushSelectPreservesResults) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    auto plan = PlanNode::Select(RandomPredicate(&rng),
                                 RandomEvaluablePlan(&rng, 3));
    auto rewritten = plan->Clone();
    PushSelectThroughUnion(rewritten.get());
    auto before = engine::Evaluate(*plan);
    auto after = engine::Evaluate(*rewritten);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(Fingerprint(*before), Fingerprint(*after))
        << plan->ToDebugString();
  }
}

TEST_P(RewriteEquivalence, DifferenceSplitPreservesResults) {
  Rng rng(GetParam() + 1000);
  Locality everything;
  everything.is_local_url = [](const PlanNode&) { return true; };
  for (int round = 0; round < 10; ++round) {
    std::vector<PlanNodePtr> branches;
    const size_t n = 2 + rng.NextBelow(2);
    for (size_t i = 0; i < n; ++i) {
      branches.push_back(RandomEvaluablePlan(&rng, 2));
    }
    auto plan = PlanNode::Difference(PlanNode::XmlData(RandomItems(&rng, 8)),
                                     PlanNode::Union(std::move(branches)));
    auto rewritten = plan->Clone();
    SplitDifferenceOverUnion(rewritten.get(), everything);
    auto before = engine::Evaluate(*plan);
    auto after = engine::Evaluate(*rewritten);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(Fingerprint(*before), Fingerprint(*after))
        << plan->ToDebugString();
  }
}

TEST_P(RewriteEquivalence, OrEliminationYieldsSomeAlternative) {
  Rng rng(GetParam() + 2000);
  CostModel cost;
  for (int round = 0; round < 10; ++round) {
    std::vector<PlanNodePtr> alts;
    const size_t n = 2 + rng.NextBelow(2);
    for (size_t i = 0; i < n; ++i) {
      alts.push_back(RandomEvaluablePlan(&rng, 2));
    }
    auto pred = RandomPredicate(&rng);
    // Expected results: the select applied over each alternative.
    std::vector<std::multiset<std::string>> expected;
    for (const auto& a : alts) {
      auto selected = PlanNode::Select(pred, a->Clone());
      auto r = engine::Evaluate(*selected);
      ASSERT_TRUE(r.ok());
      expected.push_back(Fingerprint(*r));
    }
    auto plan = PlanNode::Select(pred, PlanNode::Or(std::move(alts)));
    for (auto pref :
         {OrPreference::kCheapest, OrPreference::kPreferLocal,
          OrPreference::kPreferCurrent, OrPreference::kPreferComplete}) {
      auto rewritten = plan->Clone();
      EliminateOrNodes(rewritten.get(), Locality{}, cost, pref);
      // No Or nodes remain.
      bool has_or = false;
      std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
        if (n.type() == algebra::OpType::kOr) has_or = true;
        for (const auto& c : n.children()) walk(*c);
      };
      walk(*rewritten);
      EXPECT_FALSE(has_or);
      auto r = engine::Evaluate(*rewritten);
      ASSERT_TRUE(r.ok());
      // The result must equal the select over one of the alternatives
      // (A|B → A or B, §4.2).
      const auto got = Fingerprint(*r);
      bool matches_some = false;
      for (const auto& e : expected) {
        if (e == got) {
          matches_some = true;
          break;
        }
      }
      EXPECT_TRUE(matches_some) << plan->ToDebugString();
    }
  }
}

TEST_P(RewriteEquivalence, ConsolidationPreservesJoinResults) {
  Rng rng(GetParam() + 3000);
  for (int round = 0; round < 5; ++round) {
    // (A ⋈ X) ⋈ B with key fields named apart, all constant data.
    ItemSet a, b, x;
    const size_t na = 2 + rng.NextBelow(5);
    for (size_t i = 0; i < na; ++i) {
      auto e = xml::Node::Element("a");
      e->AddElementWithText("k", std::to_string(rng.NextBelow(6)));
      e->AddElementWithText("av", std::to_string(i));
      a.push_back(Item(e.release()));
    }
    const size_t nb = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < nb; ++i) {
      auto e = xml::Node::Element("b");
      e->AddElementWithText("bk", std::to_string(rng.NextBelow(6)));
      e->AddElementWithText("bv", std::to_string(i));
      b.push_back(Item(e.release()));
    }
    const size_t nx = 2 + rng.NextBelow(6);
    for (size_t i = 0; i < nx; ++i) {
      auto e = xml::Node::Element("x");
      e->AddElementWithText("xk", std::to_string(rng.NextBelow(6)));
      e->AddElementWithText("xv", std::to_string(i));
      x.push_back(Item(e.release()));
    }
    // Make X "remote" by using a URN that only the reference resolver
    // binds; for the rewrite we treat A and B as local data and X as a
    // urn. For evaluation, substitute X's data into both plans.
    auto build = [&]() {
      auto inner = PlanNode::Join(algebra::JoinEq("k", "xk"),
                                  PlanNode::XmlData(a),
                                  PlanNode::UrnRef("urn:x:x"));
      return PlanNode::Join(algebra::JoinEq("k", "bk"), inner,
                            PlanNode::XmlData(b));
    };
    auto plan = build();
    auto rewritten = plan->Clone();
    ConsolidateJoins(rewritten.get(), Locality{});
    auto bind_x = [&](const PlanNodePtr& root) {
      for (const PlanNode* u : root->UrnLeaves()) {
        const_cast<PlanNode*>(u)->MorphToData(x);
      }
    };
    bind_x(plan);
    bind_x(rewritten);
    auto before = engine::Evaluate(*plan);
    auto after = engine::Evaluate(*rewritten);
    ASSERT_TRUE(before.ok() && after.ok());
    // Items merge in different field orders; compare by join keys.
    auto keys = [](const ItemSet& items) {
      std::multiset<std::string> out;
      for (const auto& i : items) {
        out.insert(i->ChildText("k") + "|" + i->ChildText("av") + "|" +
                   i->ChildText("bv") + "|" + i->ChildText("xv"));
      }
      return out;
    };
    EXPECT_EQ(keys(*before), keys(*after));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalence,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace mqp::optimizer
