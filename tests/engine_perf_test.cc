// Randomized equivalence suite for the zero-copy engine (PR 5).
//
// Every optimized path is compared against the behavior it replaced over
// 1000 seeded inputs:
//   * shared-item LocalStore vs. the cloning reference
//     (set_use_shared_store(false)),
//   * StructuralHash-keyed distinct/difference vs. serialize-keyed
//     references implemented here,
//   * accessor-keyed hash join vs. the old string-keyed algorithm,
//   * bounded-heap top-N vs. stable_sort + truncate (duplicate-key
//     tie-break determinism included),
// plus the PR's acceptance assert: a filter query over a local collection
// performs zero deep clones, zero xml::Serialize calls and zero DOM node
// construction on the evaluation path.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "algebra/plan.h"
#include "common/rng.h"
#include "engine/field_accessor.h"
#include "engine/local_store.h"
#include "engine/operator.h"
#include "xml/writer.h"
#include "xml/xpath.h"

namespace mqp::engine {
namespace {

using algebra::Expr;
using algebra::Item;
using algebra::ItemSet;
using algebra::PlanNode;
using algebra::PlanNodePtr;

/// Restores the shared-store knob on scope exit.
struct KnobGuard {
  ~KnobGuard() { set_use_shared_store(true); }
};

std::vector<std::string> SerializeAll(const ItemSet& items) {
  std::vector<std::string> out;
  out.reserve(items.size());
  for (const Item& item : items) {
    out.push_back(xml::Serialize(*item));
  }
  return out;
}

// A random item: usually a flat <cd>, sometimes nested, occasionally the
// pathological shapes the store must handle (an element named "data" with
// an id attribute; an element named "id" that shadows the attribute form
// of the collection predicate; multiple text runs).
Item RandomItem(Rng* rng) {
  const uint64_t shape = rng->NextBelow(10);
  if (shape == 0) {
    auto n = xml::Node::Element("data");
    n->SetAttr("id", "x" + std::to_string(rng->NextBelow(3)));
    n->AddElementWithText("inner", std::to_string(rng->NextBelow(5)));
    return Item(n.release());
  }
  if (shape == 1) {
    return Item(
        xml::Node::ElementWithText("id", std::to_string(rng->NextBelow(9)))
            .release());
  }
  auto n = xml::Node::Element("cd");
  n->AddElementWithText("title", rng->NextWord(4));
  n->AddElementWithText("price", std::to_string(rng->NextBelow(30)));
  if (rng->NextBool(0.3)) {
    auto* info = n->AddElement("info");
    info->AddElementWithText("price", std::to_string(rng->NextBelow(30)));
    info->AddElementWithText("genre", rng->NextWord(3));
  }
  if (rng->NextBool(0.15)) {
    n->AddText("loose");
    n->AddElementWithText("title", rng->NextWord(4));
  }
  return Item(n.release());
}

ItemSet RandomItems(Rng* rng, size_t max_n) {
  ItemSet out;
  const size_t n = rng->NextBelow(max_n + 1);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(RandomItem(rng));
  }
  return out;
}

TEST(EnginePerfTest, SharedStoreMatchesCloningReference) {
  KnobGuard guard;
  const std::vector<std::string> id_pool = {
      "c0", "c1", "245", "0245", "a]b", "it's", "with space",
      "replica:10.0.0.5:9020"};
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    LocalStore store;
    std::vector<std::string> ids;
    const size_t n_colls = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < n_colls; ++i) {
      const std::string& id = rng.Pick(id_pool);
      store.AddCollection(id, RandomItems(&rng, 8));
      ids.push_back(id);
    }
    std::vector<std::string> xpaths = {
        "",
        "/data",
        "data",
        "/*",
        "//cd",
        "/data/cd[price<15]",
        "/data/cd/title",
        "/data/cd[2]",
        "//data",
        "/data/cd/info",
        "/data[zz=1]",
        "/data[id=5]",   // may be answered by an <id> element item
        "/data[@id=5]",
    };
    for (const std::string& id : ids) {
      xpaths.push_back(LocalStore::CollectionXPath(id));
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/cd[price<12]");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/cd/title");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "//price");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/cd[3]");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/id");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/data");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/@id");
      xpaths.push_back(LocalStore::CollectionXPath(id) + "/cd/@x");
      if (id.find('\'') == std::string::npos &&
          id.find(' ') == std::string::npos && id.find(']') == std::string::npos) {
        xpaths.push_back("/data[id=" + id + "]");        // legacy bare form
        xpaths.push_back("/data[id=" + id + "]/cd");
      }
    }
    const std::string& xpath = xpaths[rng.NextBelow(xpaths.size())];
    set_use_shared_store(true);
    auto fast = store.Fetch("", xpath);
    set_use_shared_store(false);
    auto reference = store.Fetch("", xpath);
    set_use_shared_store(true);
    ASSERT_EQ(fast.ok(), reference.ok()) << "seed " << seed << " " << xpath;
    if (!fast.ok()) continue;
    ASSERT_EQ(SerializeAll(*fast), SerializeAll(*reference))
        << "seed " << seed << " xpath " << xpath;
  }
}

TEST(EnginePerfTest, HashDistinctMatchesSerializeReference) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    // Small pools force structural duplicates (shared *and* deep-equal
    // separate nodes).
    ItemSet pool = RandomItems(&rng, 6);
    if (pool.empty()) continue;
    std::vector<PlanNodePtr> inputs;
    ItemSet concatenated;
    const size_t n_inputs = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < n_inputs; ++i) {
      ItemSet part;
      const size_t n = rng.NextBelow(10);
      for (size_t j = 0; j < n; ++j) {
        const Item& picked = rng.Pick(pool);
        part.push_back(rng.NextBool() ? picked
                                      : algebra::MakeItem(*picked));
      }
      concatenated.insert(concatenated.end(), part.begin(), part.end());
      inputs.push_back(PlanNode::XmlData(std::move(part)));
    }
    auto got = Evaluate(*PlanNode::Union(std::move(inputs), true));
    ASSERT_TRUE(got.ok()) << got.status();
    // Reference: the old serialize-keyed first-occurrence dedup.
    ItemSet expect;
    std::unordered_set<std::string> seen;
    for (const Item& item : concatenated) {
      if (seen.insert(xml::Serialize(*item)).second) expect.push_back(item);
    }
    ASSERT_EQ(SerializeAll(*got), SerializeAll(expect)) << "seed " << seed;
  }
}

TEST(EnginePerfTest, HashDifferenceMatchesSerializeReference) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    ItemSet pool = RandomItems(&rng, 5);
    if (pool.empty()) continue;
    auto draw = [&](size_t max_n) {
      ItemSet out;
      const size_t n = rng.NextBelow(max_n);
      for (size_t i = 0; i < n; ++i) {
        const Item& picked = rng.Pick(pool);
        out.push_back(rng.NextBool() ? picked : algebra::MakeItem(*picked));
      }
      return out;
    };
    ItemSet left = draw(12);
    ItemSet right = draw(8);
    auto got = Evaluate(*PlanNode::Difference(PlanNode::XmlData(left),
                                              PlanNode::XmlData(right)));
    ASSERT_TRUE(got.ok());
    // Reference: the old multiset subtraction on serialized keys.
    std::unordered_map<std::string, int> counts;
    for (const Item& item : right) counts[xml::Serialize(*item)]++;
    ItemSet expect;
    for (const Item& item : left) {
      auto it = counts.find(xml::Serialize(*item));
      if (it != counts.end() && it->second > 0) {
        --it->second;
        continue;
      }
      expect.push_back(item);
    }
    ASSERT_EQ(SerializeAll(*got), SerializeAll(expect)) << "seed " << seed;
  }
}

// The old join key extraction: first child element match, then the
// expression machinery.
std::optional<std::string> ReferenceFieldOf(const xml::Node& item,
                                            const std::string& path) {
  const xml::Node* c = item.Child(path);
  if (c != nullptr) return c->InnerText();
  auto v = Expr::Field(path)->EvalValue(item);
  if (!v) return std::nullopt;
  return v->text;
}

TEST(EnginePerfTest, HashJoinMatchesStringKeyedReference) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    const bool outer = rng.NextBool(0.4);
    const bool nested_key = rng.NextBool(0.25);
    auto make_side = [&](const char* elem, const char* key_field,
                         size_t max_n) {
      ItemSet out;
      const size_t n = rng.NextBelow(max_n);
      for (size_t i = 0; i < n; ++i) {
        auto item = xml::Node::Element(elem);
        if (rng.NextBool(0.85)) {  // some items lack the key entirely
          const std::string key = "k" + std::to_string(rng.NextBelow(4));
          if (nested_key) {
            item->AddElement("wrap")->AddElementWithText(key_field, key);
          } else {
            item->AddElementWithText(key_field, key);
          }
        }
        item->AddElementWithText("v", std::to_string(i));
        out.push_back(Item(item.release()));
      }
      return out;
    };
    const std::string lpath = nested_key ? "wrap/lk" : "lk";
    const std::string rpath = nested_key ? "wrap/rk" : "rk";
    ItemSet left = make_side("l", "lk", 10);
    ItemSet right = make_side("r", "rk", 10);
    auto cond = algebra::JoinEq(lpath, rpath);
    auto plan = outer ? PlanNode::LeftOuterJoin(cond, PlanNode::XmlData(left),
                                                PlanNode::XmlData(right))
                      : PlanNode::Join(cond, PlanNode::XmlData(left),
                                       PlanNode::XmlData(right));
    auto got = Evaluate(*plan);
    ASSERT_TRUE(got.ok());
    // Reference: the old string-keyed hash join, including its output
    // order (probe order x build order) and outer pass-through.
    std::unordered_map<std::string, std::vector<size_t>> hash;
    for (size_t i = 0; i < right.size(); ++i) {
      auto key = ReferenceFieldOf(*right[i], rpath);
      if (key) hash[*key].push_back(i);
    }
    std::vector<std::string> expect;
    for (const Item& l : left) {
      auto key = ReferenceFieldOf(*l, lpath);
      std::vector<size_t> matches;
      if (key) {
        auto it = hash.find(*key);
        if (it != hash.end()) matches = it->second;
      }
      if (outer && matches.empty()) {
        expect.push_back(xml::Serialize(*l));
        continue;
      }
      for (size_t i : matches) {
        // MergeItems is shared by both sides of the comparison; rebuild
        // its output through the public plan path instead of reimplementing.
        auto one = Evaluate(*PlanNode::Join(algebra::JoinEq(lpath, rpath),
                                            PlanNode::XmlData({l}),
                                            PlanNode::XmlData({right[i]})));
        ASSERT_TRUE(one.ok());
        ASSERT_EQ(one->size(), 1u);
        expect.push_back(xml::Serialize(*(*one)[0]));
      }
    }
    ASSERT_EQ(SerializeAll(*got), expect) << "seed " << seed;
  }
}

TEST(EnginePerfTest, HeapTopNMatchesStableSortReference) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    // Few distinct keys: duplicate-key tie-breaks dominate the test.
    ItemSet items;
    const size_t n = rng.NextBelow(20);
    for (size_t i = 0; i < n; ++i) {
      auto item = xml::Node::Element("x");
      if (rng.NextBool(0.9)) {
        item->AddElementWithText(
            "price", std::to_string(rng.NextBelow(5) * (rng.NextBool() ? 1 : 10)));
      }
      item->AddElementWithText("seq", std::to_string(i));
      items.push_back(Item(item.release()));
    }
    const uint64_t limit = rng.NextBelow(n + 3);
    const bool ascending = rng.NextBool();
    auto got = Evaluate(
        *PlanNode::TopN(limit, "price", ascending, PlanNode::XmlData(items)));
    ASSERT_TRUE(got.ok());
    // Reference: the old materialize / stable_sort / truncate.
    ItemSet expect = items;
    auto key = [](const Item& item) {
      return algebra::Value{
          ReferenceFieldOf(*item, "price").value_or("")};
    };
    std::stable_sort(expect.begin(), expect.end(),
                     [&](const Item& a, const Item& b) {
                       const int cmp = key(a).Compare(key(b));
                       return ascending ? cmp < 0 : cmp > 0;
                     });
    if (expect.size() > limit) expect.resize(limit);
    ASSERT_EQ(SerializeAll(*got), SerializeAll(expect))
        << "seed " << seed << " limit " << limit << " asc " << ascending;
  }
}

TEST(EnginePerfTest, FieldAccessorCompilesTheExpectedPaths) {
  // Direct walk for plain chains and trailing attrs; XPath fallback for
  // anything the walk can't express.
  EXPECT_TRUE(FieldAccessor("price").compiled());
  EXPECT_TRUE(FieldAccessor("seller/city").compiled());
  EXPECT_TRUE(FieldAccessor("seller/@id").compiled());
  EXPECT_TRUE(FieldAccessor("@id").compiled());
  EXPECT_FALSE(FieldAccessor("a[b=1]").compiled());
  EXPECT_FALSE(FieldAccessor("/a").compiled());
  EXPECT_FALSE(FieldAccessor("a//b").compiled());
  EXPECT_FALSE(FieldAccessor("*").compiled());
  EXPECT_FALSE(FieldAccessor("a/@x/b").compiled());
}

TEST(EnginePerfTest, FieldAccessorMatchesExprField) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    const Item item = RandomItem(&rng);
    for (const std::string path :
         {"title", "price", "info/price", "info/genre", "missing",
          "info/price/deep", "@id", "inner", "info/", "/title", "info//x",
          ""}) {
      FieldAccessor acc(path);
      auto got = acc.Eval(*item);
      auto expect = Expr::Field(path)->EvalValue(*item);
      ASSERT_EQ(got.has_value(), expect.has_value())
          << "seed " << seed << " path " << path;
      if (got) {
        EXPECT_EQ(std::string(*got), expect->text)
            << "seed " << seed << " path " << path;
      }
    }
  }
}

TEST(EnginePerfTest, FilterQueryPerformsZeroClonesAndZeroSerializes) {
  // The PR's acceptance criterion, asserted via the new counters: a
  // filter query over a local collection of N items runs with zero deep
  // clones, zero xml::Serialize calls and zero DOM nodes built.
  LocalStore store;
  ItemSet items;
  for (int i = 0; i < 200; ++i) {
    auto item = xml::Node::Element("cd");
    item->AddElementWithText("title", "t" + std::to_string(i));
    item->AddElementWithText("price", std::to_string(i % 40));
    items.push_back(Item(item.release()));
  }
  store.AddCollection("c0", items);
  auto plan = PlanNode::Select(
      algebra::FieldLess("price", "10"),
      PlanNode::Url("local:9020", LocalStore::CollectionXPath("c0")));

  (void)Evaluate(*plan, &store);  // warm: first fetch parses the xpath

  const uint64_t cloned_before = Stats().items_cloned;
  const uint64_t serializes_before = xml::SerializeCalls();
  const uint64_t nodes_before = xml::DomNodesBuilt();
  auto r = Evaluate(*plan, &store);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 50u);
  EXPECT_EQ(Stats().items_cloned - cloned_before, 0u);
  EXPECT_EQ(xml::SerializeCalls() - serializes_before, 0u);
  EXPECT_EQ(xml::DomNodesBuilt() - nodes_before, 0u);
  // The results are the very store items, not copies.
  EXPECT_EQ((*r)[0].get(), items[0].get());
}

TEST(EnginePerfTest, DistinctUnionOverSharedItemsBuildsNoNodes) {
  // Set semantics on the zero-copy path: distinct over two overlapping
  // shared collections dedups without serializing or cloning anything.
  LocalStore store;
  ItemSet items;
  for (int i = 0; i < 50; ++i) {
    items.push_back(Item(
        xml::Node::ElementWithText("v", std::to_string(i % 20)).release()));
  }
  store.AddCollection("a", items);
  store.AddCollection("b", items);
  auto plan = PlanNode::Union(
      {PlanNode::Url("local:9020", LocalStore::CollectionXPath("a")),
       PlanNode::Url("local:9020", LocalStore::CollectionXPath("b"))},
      /*distinct=*/true);
  const uint64_t cloned_before = Stats().items_cloned;
  const uint64_t serializes_before = xml::SerializeCalls();
  const uint64_t probes_before = Stats().structural_hash_probes;
  auto r = Evaluate(*plan, &store);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 20u);
  EXPECT_EQ(Stats().items_cloned - cloned_before, 0u);
  EXPECT_EQ(xml::SerializeCalls() - serializes_before, 0u);
  EXPECT_EQ(Stats().structural_hash_probes - probes_before, 100u);
}

TEST(EnginePerfTest, CachesSurviveUnrelatedTreeConstruction) {
  // The point of the marked-subtree epoch: building fresh trees (wire
  // decode, result materialization) must not flush the hash/size caches
  // of stored immutable items — only mutating a cached subtree does.
  auto cached = xml::Node::Element("cd");
  cached->AddElementWithText("price", "7");
  const uint64_t h1 = xml::StructuralHash(*cached);
  (void)xml::SerializedSize(*cached);
  const uint64_t epoch = xml::DomMutationEpoch();
  // Unrelated construction: no epoch movement, caches stay valid.
  auto fresh = xml::Node::Element("noise");
  for (int i = 0; i < 10; ++i) {
    fresh->AddElementWithText("x", std::to_string(i));
  }
  fresh->SetAttr("a", "b");
  EXPECT_EQ(xml::DomMutationEpoch(), epoch);
  EXPECT_EQ(xml::StructuralHash(*cached), h1);
  // Mutating inside the cached subtree bumps and recomputes.
  cached->mutable_children()[0]->AddText("9");
  EXPECT_GT(xml::DomMutationEpoch(), epoch);
  EXPECT_NE(xml::StructuralHash(*cached), h1);
}

TEST(EnginePerfTest, StructuralHashConsistentWithEquality) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    const Item a = RandomItem(&rng);
    const Item b = RandomItem(&rng);
    const Item a_clone = algebra::MakeItem(*a);
    EXPECT_EQ(xml::StructuralHash(*a), xml::StructuralHash(*a_clone));
    EXPECT_TRUE(a->StructurallyEquals(*a_clone));
    if (a->StructurallyEquals(*b)) {
      EXPECT_EQ(xml::StructuralHash(*a), xml::StructuralHash(*b));
    }
  }
}

}  // namespace
}  // namespace mqp::engine
