// Reliability suite (DESIGN.md §9): deterministic fault injection over
// the garage-sale workload, the client retry/failover/degradation layer,
// and drop-accounting parity across the three transport backends.
//
// Fault fates are content-hashed (net/fault_injector.h), so every
// scenario here is a pure function of its seed: the determinism sweeps
// re-run the same plan and demand byte-identical fate traces. Seed
// counts default to a quick smoke sweep; CI's dedicated job sets
// MQP_EQUIV_SEEDS=1000 for the full suite (sanitizer runs shrink it).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/fault_injector.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "peer/peer.h"
#include "runtime/tcp_transport.h"
#include "runtime/threaded_runtime.h"
#include "wire/envelope.h"
#include "workload/churn.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using peer::Peer;
using peer::PeerOptions;
using peer::QueryOutcome;
using runtime::RuntimeOptions;
using runtime::TcpTransport;
using runtime::ThreadedRuntime;
using workload::BuildGarageSaleNetwork;
using workload::GarageSaleNetwork;
using workload::GarageSaleNetworkParams;
using workload::MakeAreaQueryPlan;

size_t EquivSeeds(size_t fallback) {
  if (const char* env = std::getenv("MQP_EQUIV_SEEDS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

void SetReliability(GarageSaleNetwork* net, bool enabled) {
  std::vector<Peer*> all;
  all.push_back(net->client);
  all.push_back(net->top_meta);
  all.insert(all.end(), net->index_servers.begin(), net->index_servers.end());
  all.insert(all.end(), net->sellers.begin(), net->sellers.end());
  for (Peer* p : all) p->mutable_options().reliability.enabled = enabled;
}

bool SellerInArea(const workload::Seller& s, const ns::InterestArea& area) {
  for (const auto& c : area.cells()) {
    if (c.Covers(s.cell)) return true;
  }
  return false;
}

std::vector<size_t> InAreaSellers(const GarageSaleNetwork& net,
                                  const ns::InterestArea& area) {
  std::vector<size_t> idx;
  for (size_t i = 0; i < net.seller_specs.size(); ++i) {
    if (SellerInArea(net.seller_specs[i], area)) idx.push_back(i);
  }
  return idx;
}

// --- fault-fate determinism --------------------------------------------------

/// One garage-sale query under a mixed fault plan, with every fate
/// decision recorded as "<fate>|<from>-><to>|<kind>|<header>" lines.
struct FaultedRun {
  std::string trace;
  size_t fault_drops = 0, fault_dups = 0, fault_delays = 0;
  bool returned = false;
  bool complete = false;
};

FaultedRun RunFaultedQuery(uint64_t seed) {
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = seed;
  plan.spec.drop_rate = 0.03;
  plan.spec.dup_rate = 0.02;
  plan.spec.delay_rate = 0.02;
  net::FaultInjector fi(&sim, plan);

  GarageSaleNetworkParams params;
  params.num_sellers = 8;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = BuildGarageSaleNetwork(&fi, params);
  fi.Arm();

  FaultedRun run;
  fi.set_trace([&](const net::Message& m, char fate) {
    run.trace += fate;
    run.trace += '|';
    run.trace += std::to_string(m.from) + "->" + std::to_string(m.to);
    run.trace += '|';
    run.trace += m.kind;
    run.trace += '|';
    run.trace += m.header;
    run.trace += '\n';
  });
  net.client->SubmitQuery(MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
                          [&](const QueryOutcome& o) {
                            run.returned = true;
                            run.complete = o.complete;
                          });
  fi.Run();
  run.fault_drops = sim.stats().fault_drops;
  run.fault_dups = sim.stats().fault_dups;
  run.fault_delays = sim.stats().fault_delays;
  return run;
}

// Same seed, same plan → byte-identical fate trace and identical fault
// tallies. This is the determinism contract the threaded-equivalence and
// resume machinery lean on.
TEST(FaultDeterminism, SameSeedSameFateTraceManySeeds) {
  const size_t seeds = EquivSeeds(25);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    const FaultedRun a = RunFaultedQuery(seed);
    const FaultedRun b = RunFaultedQuery(seed);
    ASSERT_EQ(a.trace, b.trace) << "seed " << seed;
    ASSERT_EQ(a.fault_drops, b.fault_drops) << "seed " << seed;
    ASSERT_EQ(a.fault_dups, b.fault_dups) << "seed " << seed;
    ASSERT_EQ(a.fault_delays, b.fault_delays) << "seed " << seed;
    EXPECT_TRUE(a.returned) << "seed " << seed;
  }
}

// Different seeds must actually re-roll the coins (a degenerate hash
// would make every sweep above pass vacuously).
TEST(FaultDeterminism, DifferentSeedsDiverge) {
  const FaultedRun a = RunFaultedQuery(101);
  const FaultedRun b = RunFaultedQuery(202);
  EXPECT_NE(a.trace, b.trace);
}

// A retry is a *different* message (the attempt number is stamped into
// the wire header), so it draws fresh coins: on a 50%-lossy first hop a
// query whose initial attempt dies still completes. If retries were
// byte-identical they would share the initial attempt's fate and the
// query could never get through.
TEST(FaultDeterminism, RetriesDrawFreshCoins) {
  bool saw_retry_then_success = false;
  for (uint64_t seed = 1; seed <= 30 && !saw_retry_then_success; ++seed) {
    net::Simulator sim;
    net::FaultPlan plan;
    plan.seed = seed;
    GarageSaleNetworkParams params;
    params.num_sellers = 6;
    params.items_per_seller = 4;
    params.seed = seed;
    net::FaultInjector fi(&sim, plan);
    auto net = BuildGarageSaleNetwork(&fi, params);
    fi.mutable_plan().per_link[{net.client->id(), net.top_meta->id()}] = {
        .drop_rate = 0.5};
    fi.Arm();
    QueryOutcome outcome;
    bool done = false;
    net.client->SubmitQuery(
        MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
        [&](const QueryOutcome& o) {
          outcome = o;
          done = true;
        });
    fi.Run();
    ASSERT_TRUE(done) << "seed " << seed;
    if (outcome.complete && outcome.attempts > 1) {
      saw_retry_then_success = true;
      EXPECT_GT(net.client->counters().query_retries, 0u);
    }
  }
  EXPECT_TRUE(saw_retry_then_success)
      << "no seed in 1..30 had a dropped first attempt rescued by a retry";
}

// --- fault plan mechanics ----------------------------------------------------

// All three fault classes fire under a mixed plan and are tallied in the
// inner transport's NetStats.
TEST(FaultInjection, CountersTallied) {
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = 5;
  plan.spec.drop_rate = 0.05;
  plan.spec.dup_rate = 0.05;
  plan.spec.delay_rate = 0.05;
  net::FaultInjector fi(&sim, plan);
  GarageSaleNetworkParams params;
  params.num_sellers = 12;
  params.seed = 5;
  auto net = BuildGarageSaleNetwork(&fi, params);
  fi.Arm();
  size_t done = 0;
  for (int q = 0; q < 8; ++q) {
    fi.Schedule(10.0 * (q + 1), [&] {
      net.client->SubmitQuery(MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
                              [&](const QueryOutcome&) { ++done; });
    });
  }
  fi.Run();
  EXPECT_EQ(done, 8u);
  EXPECT_GT(sim.stats().fault_drops, 0u);
  EXPECT_GT(sim.stats().fault_dups, 0u);
  EXPECT_GT(sim.stats().fault_delays, 0u);
}

// Per-kind overrides scope faults to one message kind: with duplication
// configured for "result" only, every 'D' fate in the trace is a result.
TEST(FaultInjection, PerKindOverridesScopeFaults) {
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = 9;
  plan.per_kind[wire::kResultKind] = {.dup_rate = 1.0};
  net::FaultInjector fi(&sim, plan);
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.seed = 9;
  auto net = BuildGarageSaleNetwork(&fi, params);
  fi.Arm();
  size_t dup_fates = 0;
  bool only_results_duped = true;
  fi.set_trace([&](const net::Message& m, char fate) {
    if (fate == 'D') {
      ++dup_fates;
      if (m.kind != wire::kResultKind) only_results_duped = false;
    }
  });
  bool done = false;
  net.client->SubmitQuery(MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
                          [&](const QueryOutcome&) { done = true; });
  fi.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(dup_fates, 0u);
  EXPECT_TRUE(only_results_duped);
  EXPECT_EQ(sim.stats().fault_dups, dup_fates);
}

// Scheduled crash/restart events flip the inner transport's failure
// state at the planned times.
TEST(FaultInjection, ScheduledCrashAndRestartFire) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 4;
  params.seed = 3;
  net::FaultPlan plan;
  net::FaultInjector fi(&sim, plan);
  auto net = BuildGarageSaleNetwork(&fi, params);
  const net::PeerId victim = net.sellers[0]->id();
  fi.mutable_plan().crashes.push_back({victim, 10.0, 20.0});
  fi.Arm();
  bool down_at_15 = false, up_at_25 = false;
  fi.Schedule(15.0, [&] { down_at_15 = fi.IsFailed(victim); });
  fi.Schedule(25.0, [&] { up_at_25 = !fi.IsFailed(victim); });
  fi.Run();
  EXPECT_TRUE(down_at_15);
  EXPECT_TRUE(up_at_25);
}

// A link flap drops exactly the flapped link's traffic inside the
// window; the reliability layer rides it out and completes after the
// link comes back.
TEST(FaultInjection, LinkFlapDropsOnlyInWindowThenQueryCompletes) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.seed = 11;
  net::FaultPlan plan;
  net::FaultInjector fi(&sim, plan);
  auto net = BuildGarageSaleNetwork(&fi, params);
  const net::PeerId c = net.client->id(), m = net.top_meta->id();
  fi.mutable_plan().flaps.push_back({c, m, 12.0, 30.0});
  fi.Arm();
  size_t flap_drops = 0;
  bool flaps_scoped = true;
  fi.set_trace([&](const net::Message& msg, char fate) {
    if (fate != 'f') return;
    ++flap_drops;
    if (msg.from != c || msg.to != m) flaps_scoped = false;
    const double t = fi.now();
    if (t < 12.0 || t >= 30.0) flaps_scoped = false;
  });
  QueryOutcome outcome;
  bool done = false;
  fi.Schedule(15.0, [&] {
    net.client->SubmitQuery(MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
                            [&](const QueryOutcome& o) {
                              outcome = o;
                              done = true;
                            });
  });
  fi.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  EXPECT_GT(outcome.attempts, 1u);
  EXPECT_GT(flap_drops, 0u);
  EXPECT_TRUE(flaps_scoped) << "a flap fate fired off-link or off-window";
  EXPECT_GE(sim.stats().fault_drops, flap_drops);
}

// --- acceptance: retries + failover beat the ablation ------------------------

struct CellResult {
  size_t complete = 0;
  size_t submitted = 0;
};

/// The ISSUE.md acceptance cell at test scale: 5% uniform drop plus two
/// well-separated in-area seller outages (each bridged by the 120 s
/// deadline; the gap between windows exceeds the deadline so no query's
/// budget spans both — that would measure the plan, not the policy).
CellResult RunAcceptanceCell(bool retries, size_t num_queries,
                             uint64_t seed) {
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = seed;
  plan.spec.drop_rate = 0.05;
  net::FaultInjector fi(&sim, plan);
  GarageSaleNetworkParams params;
  params.num_sellers = 20;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = BuildGarageSaleNetwork(&fi, params);
  SetReliability(&net, retries);
  const auto area = *ns::InterestArea::Parse("(USA.OR,*)");
  auto in_area = InAreaSellers(net, area);
  if (!in_area.empty()) {
    fi.mutable_plan().crashes.push_back(
        {net.sellers[in_area[0]]->id(), 40.0, 100.0});
  }
  if (in_area.size() > 1) {
    fi.mutable_plan().crashes.push_back(
        {net.sellers[in_area[1]]->id(), 250.0, 310.0});
  }
  fi.Arm();
  CellResult r;
  r.submitted = num_queries;
  for (size_t q = 0; q < num_queries; ++q) {
    fi.Schedule(10.0 * static_cast<double>(q + 1), [&] {
      net.client->SubmitQuery(MakeAreaQueryPlan(area),
                              [&](const QueryOutcome& o) {
                                if (o.complete) ++r.complete;
                              });
    });
  }
  fi.Run();
  return r;
}

// ≥99% completion with retries+failover on; strictly lower with the
// layer ablated. Mirrors bench_c13's shape check at unit-test scale.
TEST(ReliabilityAcceptance, RetriesAndFailoverBeatAblationAtFivePercentLoss) {
  const CellResult on = RunAcceptanceCell(true, 40, 1300);
  const CellResult off = RunAcceptanceCell(false, 40, 1300);
  EXPECT_GE(on.complete * 100.0, on.submitted * 99.0)
      << on.complete << "/" << on.submitted << " with retries on";
  EXPECT_LT(off.complete, on.complete)
      << "ablation matched the reliability layer — the cell is too easy";
}

// --- graceful degradation ----------------------------------------------------

// A seller down past every deadline: the affected queries come back
// timed_out with the partial items the live sellers contributed, the
// partial delivery is counted, and nothing leaks in the pending map.
TEST(ReliabilityDegradation, DeadlineExpiredDeliversPartial) {
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = 1300;
  net::FaultInjector fi(&sim, plan);
  GarageSaleNetworkParams params;
  params.num_sellers = 20;
  params.items_per_seller = 4;
  params.seed = 1300;
  auto net = BuildGarageSaleNetwork(&fi, params);
  // Pick an area with at least two in-area sellers so a partial answer
  // has somewhere to come from while one holder is dark.
  ns::InterestArea area = *ns::InterestArea::Parse("(USA.OR,*)");
  for (const char* cand :
       {"(USA.OR,*)", "(USA.WA,*)", "(USA.CA,*)"}) {
    auto a = *ns::InterestArea::Parse(cand);
    if (InAreaSellers(net, a).size() >= 2) {
      area = a;
      break;
    }
  }
  auto in_area = InAreaSellers(net, area);
  ASSERT_GE(in_area.size(), 2u) << "seed produced no multi-seller area";
  // Down from before the first query until far past the last deadline.
  fi.mutable_plan().crashes.push_back(
      {net.sellers[in_area[0]]->id(), 20.0, 0.0});
  fi.Arm();
  size_t partial_with_items = 0, returned = 0;
  for (int q = 0; q < 6; ++q) {
    fi.Schedule(30.0 + 10.0 * q, [&] {
      net.client->SubmitQuery(MakeAreaQueryPlan(area),
                              [&](const QueryOutcome& o) {
                                ++returned;
                                if (o.timed_out && !o.items.empty()) {
                                  ++partial_with_items;
                                }
                              });
    });
  }
  fi.Run();
  EXPECT_EQ(returned, 6u) << "a query never came back at all";
  EXPECT_GT(partial_with_items, 0u)
      << "no degradation: timed-out queries carried no items";
  EXPECT_GT(net.client->counters().partials_delivered, 0u);
  EXPECT_GT(sim.stats().partials_delivered, 0u);
  EXPECT_EQ(net.client->pending_queries(), 0u) << "pending entries leaked";
}

// --- duplicate suppression ---------------------------------------------------

// Every result message duplicated on the wire: the client's callback
// still fires exactly once per query and the extra copies are counted.
TEST(ReliabilityDuplicates, DuplicatedResultsSuppressed) {
  net::Simulator sim;
  net::FaultPlan plan;
  plan.seed = 21;
  plan.per_kind[wire::kResultKind] = {.dup_rate = 1.0};
  net::FaultInjector fi(&sim, plan);
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.seed = 21;
  auto net = BuildGarageSaleNetwork(&fi, params);
  fi.Arm();
  size_t callbacks = 0;
  net.client->SubmitQuery(MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
                          [&](const QueryOutcome& o) {
                            ++callbacks;
                            EXPECT_TRUE(o.complete);
                          });
  fi.Run();
  EXPECT_EQ(callbacks, 1u) << "a duplicate result reached the callback";
  EXPECT_GT(net.client->counters().duplicates_suppressed, 0u);
  EXPECT_GT(sim.stats().duplicates_suppressed, 0u);
  EXPECT_EQ(net.client->pending_queries(), 0u);
}

// --- pending-map hygiene -----------------------------------------------------

// Waves of doomed queries (sole bootstrap dark) must not grow the
// pending map: every entry is reaped at its deadline, wave after wave.
TEST(ReliabilityLeak, PendingQueriesReapedAcrossChurnWaves) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 4;
  params.seed = 33;
  auto net = BuildGarageSaleNetwork(&sim, params);
  sim.Fail(net.top_meta->id());
  uint64_t timeouts_before = 0;
  for (int wave = 0; wave < 5; ++wave) {
    size_t returned = 0;
    for (int q = 0; q < 8; ++q) {
      net.client->SubmitQuery(
          MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
          [&](const QueryOutcome& o) {
            ++returned;
            EXPECT_FALSE(o.complete);
            EXPECT_TRUE(o.timed_out);
          });
    }
    sim.Run();
    EXPECT_EQ(returned, 8u) << "wave " << wave;
    EXPECT_EQ(net.client->pending_queries(), 0u)
        << "pending map grew across wave " << wave;
    const uint64_t timeouts = net.client->counters().query_timeouts;
    EXPECT_GT(timeouts, timeouts_before) << "wave " << wave;
    timeouts_before = timeouts;
  }
}

// --- failover and suspicion --------------------------------------------------

// A pulled replica gives the binding a second alternative; when the
// fresh source dies the resolver fails over to the stale replica and the
// query completes — with the failover counted.
TEST(ReliabilityFailover, ReplicaAlternativeAbsorbsSourceFailure) {
  net::Simulator sim;
  PeerOptions so;
  so.name = "src";
  so.roles.base = true;
  Peer source(&sim, so);
  auto area = ns::MakeArea({"USA/OR/Portland", "Books/Fiction"});
  workload::GarageSaleGenerator gen(7);
  auto gen_sellers = gen.MakeSellers(1);
  source.PublishCollection("c0", area, gen.MakeItems(gen_sellers[0], 5));

  PeerOptions io;
  io.name = "idx";
  io.roles.index = true;
  io.roles.authoritative = true;
  io.interest = ns::MakeArea({"USA/OR", "*"});
  Peer idx(&sim, io);
  source.AddBootstrap(idx.address());
  source.JoinNetwork();
  sim.Run();
  idx.PullIndexedData(/*delay_minutes=*/30);
  sim.Run();
  sim.Fail(source.id());

  PeerOptions co;
  co.name = "client";
  Peer client(&sim, co);
  client.AddBootstrap(idx.address());
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(MakeAreaQueryPlan(area), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), 5u);
  EXPECT_GT(sim.stats().failovers, 0u)
      << "the dead source was not routed around";
}

// Timed-out queries quarantine the servers whose answers never arrived;
// the quarantine expires after the TTL.
TEST(ReliabilityFailover, SuspicionQuarantineExpiresAfterTtl) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 8;
  params.items_per_seller = 3;
  params.seed = 17;
  auto net = BuildGarageSaleNetwork(&sim, params);
  const auto area = *ns::InterestArea::Parse("(USA,*)");
  // Fail one seller permanently; the query degrades to a partial and the
  // unanswered leaf lands on the suspicion list.
  Peer* victim = net.sellers[0];
  sim.Fail(victim->id());
  bool done = false;
  net.client->SubmitQuery(MakeAreaQueryPlan(area),
                          [&](const QueryOutcome& o) {
                            done = true;
                            EXPECT_FALSE(o.complete);
                          });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(net.client->IsSuspect(victim->address()))
      << "the unanswered seller was never suspected";
  // Jump past the quarantine TTL: the suspicion must lapse.
  const double ttl =
      net.client->options().reliability.suspicion_ttl_seconds;
  bool lapsed = false;
  sim.Schedule(sim.now() + ttl + 1.0,
               [&] { lapsed = !net.client->IsSuspect(victim->address()); });
  sim.Run();
  EXPECT_TRUE(lapsed) << "suspicion outlived its TTL";
}

// --- drop-accounting parity across backends ----------------------------------

class CountingSink : public net::PeerNode {
 public:
  explicit CountingSink(net::Transport* t) { id = t->Register(this); }
  void HandleMessage(const net::Message&) override {
    received.fetch_add(1, std::memory_order_relaxed);
  }
  net::PeerId id = net::kNoPeer;
  std::atomic<size_t> received{0};
};

net::Message Mail(net::PeerId from, net::PeerId to) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.kind = "probe";
  m.size_bytes = 32;
  return m;
}

// Send-side accounting: a failed sender originates nothing
// (drops_from_failed), a failed recipient swallows sends
// (drops_to_failed) — identically on the simulator and the threaded
// runtime.
TEST(DropAccounting, ThreadedSendSideMatchesSimulator) {
  auto run = [](net::Transport* t) {
    CountingSink a(t), b(t);
    t->Fail(b.id);
    t->Send(Mail(a.id, b.id));
    t->Recover(b.id);
    t->Fail(a.id);
    t->Send(Mail(a.id, b.id));
    t->Run();
    return std::pair<uint64_t, uint64_t>(
        std::as_const(*t).stats().drops_from_failed,
        std::as_const(*t).stats().drops_to_failed);
  };
  net::Simulator sim;
  const auto sim_counts = run(&sim);
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 4});
  const auto rt_counts = run(&rt);
  rt.Shutdown();
  EXPECT_EQ(sim_counts, (std::pair<uint64_t, uint64_t>(1, 1)));
  EXPECT_EQ(rt_counts, sim_counts)
      << "threaded send-side drop accounting diverged from the simulator";
}

// In-transit accounting: mail already queued for a peer that fails
// before delivery is dropped *at delivery time* and still counted as
// drops_to_failed (the simulator's in-transit contract, DESIGN.md §9).
TEST(DropAccounting, ThreadedInTransitFailureCountsDrop) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 2});
  CountingSink a(&rt), b(&rt);
  // The pool is not running yet: these enqueue into b's mailbox.
  rt.Send(Mail(a.id, b.id));
  rt.Send(Mail(a.id, b.id));
  rt.Fail(b.id);  // fails while the mail is still in transit
  rt.Run();
  EXPECT_EQ(b.received.load(), 0u);
  EXPECT_EQ(std::as_const(rt).stats().drops_to_failed, 2u);
  rt.Shutdown();
}

// TCP loopback parity, send side: same contract as above over real
// sockets.
TEST(DropAccounting, TcpSendSideCountsDrops) {
  TcpTransport tcp;
  if (!tcp.ok()) GTEST_SKIP() << "no loopback sockets in this environment";
  CountingSink a(&tcp), b(&tcp);
  tcp.Fail(b.id);
  tcp.Send(Mail(a.id, b.id));
  tcp.Recover(b.id);
  tcp.Fail(a.id);
  tcp.Send(Mail(a.id, b.id));
  tcp.Run();
  EXPECT_EQ(std::as_const(tcp).stats().drops_from_failed, 1u);
  EXPECT_EQ(std::as_const(tcp).stats().drops_to_failed, 1u);
  EXPECT_EQ(b.received.load(), 0u);
  tcp.Shutdown();
}

/// A sink whose first message parks the connection's reader thread until
/// released — the window in which a peer can fail with mail in transit.
class BlockingSink : public net::PeerNode {
 public:
  explicit BlockingSink(net::Transport* t) { id = t->Register(this); }
  void HandleMessage(const net::Message&) override {
    const size_t n = received.fetch_add(1, std::memory_order_acq_rel);
    if (n == 0) {
      entered.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  net::PeerId id = net::kNoPeer;
  std::atomic<size_t> received{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
};

// TCP in-transit parity: a frame already on the wire when its recipient
// fails is dropped at delivery and counted — the regression test for the
// delivery-time re-check in TcpTransport::Deliver.
TEST(DropAccounting, TcpInTransitFailureCountsDrop) {
  TcpTransport tcp;
  if (!tcp.ok()) GTEST_SKIP() << "no loopback sockets in this environment";
  CountingSink a(&tcp);
  BlockingSink b(&tcp);
  // m1 parks b's reader inside the handler; m2 queues behind it on the
  // same (ordered) connection.
  tcp.Send(Mail(a.id, b.id));
  tcp.Send(Mail(a.id, b.id));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!b.entered.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(b.entered.load()) << "first frame never reached the handler";
  tcp.Fail(b.id);  // m2 is now in transit toward a failed peer
  b.release.store(true, std::memory_order_release);
  tcp.Run();
  EXPECT_EQ(b.received.load(), 1u) << "the in-transit frame was delivered";
  EXPECT_GE(std::as_const(tcp).stats().drops_to_failed, 1u);
  tcp.Shutdown();
}

// --- sim-vs-threaded equivalence under faults --------------------------------

/// The runtime_test churn fingerprint, reproduced under an armed fault
/// plan: membership counts plus the final sync-layer state of every live
/// synced peer. Anti-entropy must absorb lossy, duplicating, reordering
/// gossip and still converge every backend to the *same* catalogs —
/// drops only delay rounds, duplicates are idempotent, and refresh
/// heartbeats keep advancing the vectors so no single content-hashed
/// drop can stall an exchange forever. (Link flaps are excluded here:
/// their window test reads the clock, and the two backends drain the
/// build phase at epsilon-different epochs.)
struct ChurnFp {
  size_t fails = 0, recovers = 0, departs = 0, joins = 0;
  size_t queries_submitted = 0;
  std::vector<std::set<std::string>> catalogs;
  /// Excluded from equality: a reply delta's content depends on what the
  /// responder applied *earlier in the same tick*, and that intra-tick
  /// order shifts with per-hop latency — so the per-message fault tally
  /// legitimately differs across backends. Compared as > 0 only.
  uint64_t faults_fired = 0;

  bool operator==(const ChurnFp& o) const {
    return fails == o.fails && recovers == o.recovers &&
           departs == o.departs && joins == o.joins &&
           queries_submitted == o.queries_submitted &&
           catalogs == o.catalogs;
  }
};

std::vector<std::set<std::string>> LiveCatalogKeySets(
    const workload::ChurnScenario& scenario) {
  std::vector<std::set<std::string>> out;
  for (const Peer* p : scenario.LiveSyncedPeers()) {
    std::set<std::string> keys;
    for (const auto& [o, s] : p->sync()->versioned().vector()) {
      keys.insert("vec|" + o + "|" + std::to_string(s));
    }
    for (const auto& [key, rec] : p->sync()->versioned().records()) {
      if (rec.tombstone) continue;
      if (rec.entry.kind == catalog::SyncEntryKind::kPresence) continue;
      const catalog::IndexEntry& e = rec.entry.entry;
      keys.insert(rec.version.origin + "|" + rec.entry.urn + "|" +
                  std::to_string(static_cast<int>(e.level)) + "|" +
                  e.area.ToString() + "|" + e.server + "|" + e.xpath);
    }
    out.push_back(std::move(keys));
  }
  return out;
}

ChurnFp RunChurnUnderFaults(net::Transport* transport, uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  // Faults scoped to the gossip kinds: their payloads are pure logical
  // state (version vectors, versioned records — never local clock
  // stamps), so the content-hashed fates are backend-invariant. Query
  // traffic is left alone — plan bodies carry provenance *times*, which
  // shift by per-hop latency between backends and would legitimately
  // re-roll the coins.
  const net::FaultSpec gossip_faults{
      .drop_rate = 0.05, .dup_rate = 0.05, .delay_rate = 0.05};
  plan.per_kind[wire::kSyncDigestKind] = gossip_faults;
  plan.per_kind[wire::kSyncDeltaKind] = gossip_faults;
  net::FaultInjector fi(transport, plan);
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = BuildGarageSaleNetwork(&fi, params);
  workload::ChurnParams churn;
  churn.seed = seed;
  // The knife-edge parameters from runtime_test.cc: tick grids and TTL
  // boundaries stay ≥ 2 s away from every comparison the two backends
  // could resolve differently.
  churn.duration_seconds = 62;
  churn.event_interval_seconds = 8;
  churn.downtime_seconds = 16;
  churn.query_interval_seconds = 20;
  churn.convergence_tail_seconds = 58;
  churn.sync.gossip_interval_seconds = 4;
  churn.sync.refresh_interval_seconds = 10;
  churn.sync.entry_ttl_seconds = 300;
  workload::ChurnScenario scenario(&fi, &net, churn);
  scenario.EnableSyncEverywhere();
  fi.Arm();
  scenario.Run();
  ChurnFp fp;
  fp.fails = scenario.stats().fails;
  fp.recovers = scenario.stats().recovers;
  fp.departs = scenario.stats().departs;
  fp.joins = scenario.stats().joins;
  fp.queries_submitted = scenario.stats().queries_submitted;
  const net::NetStats& stats = std::as_const(*transport).stats();
  fp.faults_fired =
      stats.fault_drops + stats.fault_dups + stats.fault_delays;
  fp.catalogs = LiveCatalogKeySets(scenario);
  return fp;
}

// Churn + gossip + an armed fault plan, compared across backends: the
// seeded fault schedule and the final sync-layer state must match the
// simulator's at every thread count.
TEST(FaultEquivalence, ChurnUnderFaultsMatchesSimulator) {
  const size_t seeds = std::max<size_t>(1, EquivSeeds(40) / 4);
  for (uint64_t seed = 3; seed < 3 + seeds; ++seed) {
    net::Simulator sim;
    const ChurnFp reference = RunChurnUnderFaults(&sim, seed);
    EXPECT_GT(reference.faults_fired, 0u)
        << "seed " << seed << ": the fault plan never fired";
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      ThreadedRuntime rt(RuntimeOptions{.num_threads = threads});
      const ChurnFp got = RunChurnUnderFaults(&rt, seed);
      EXPECT_GT(got.faults_fired, 0u) << "seed " << seed;
      ASSERT_EQ(reference, got)
          << "seed " << seed << " threads " << threads;
      rt.Shutdown();
    }
  }
}

}  // namespace
}  // namespace mqp
