// Tests for runtime::ThreadedRuntime (DESIGN.md §8): seeded equivalence
// with the deterministic simulator on the garage-sale and churn
// scenarios, mailbox backpressure, graceful shutdown, and sharded-stats
// merging.
//
// Seed counts default to a quick smoke sweep; CI's dedicated runtime job
// sets MQP_EQUIV_SEEDS=1000 for the full suite (one process, one core,
// TSan-instrumented runs shrink it instead).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "peer/peer.h"
#include "runtime/threaded_runtime.h"
#include "workload/churn.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using runtime::RuntimeOptions;
using runtime::ThreadedRuntime;

size_t EquivSeeds(size_t fallback) {
  if (const char* env = std::getenv("MQP_EQUIV_SEEDS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

// --- garage-sale query equivalence -------------------------------------------

/// What a query result must agree on across backends: completeness and
/// the multiset of item names. Timing fields (completed_at) and traffic
/// ordering are backend-specific — the threaded runtime has no latency
/// model — and are deliberately excluded (DESIGN.md §8).
struct QueryFp {
  bool returned = false;
  bool complete = false;
  std::vector<std::string> names;
  bool operator==(const QueryFp&) const = default;
};

QueryFp RunGarageSaleQuery(net::Transport* transport, uint64_t seed) {
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.items_per_seller = 5;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(transport, params);
  auto area = *ns::InterestArea::Parse("(USA,*)");
  QueryFp fp;
  net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                          [&](const peer::QueryOutcome& o) {
                            fp.returned = true;
                            fp.complete = o.complete;
                            for (const auto& item : o.items) {
                              fp.names.push_back(item->ChildText("name"));
                            }
                            std::sort(fp.names.begin(), fp.names.end());
                          });
  transport->Run();
  return fp;
}

// The acceptance sweep: for every seed, the threaded runtime at 1, 4 and
// 8 worker threads returns the same complete result set as the
// simulator.
TEST(RuntimeEquivalence, GarageSaleMatchesSimulatorManySeeds) {
  const size_t seeds = EquivSeeds(1000);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    net::Simulator sim;
    const QueryFp reference = RunGarageSaleQuery(&sim, seed);
    EXPECT_TRUE(reference.returned) << "seed " << seed;
    EXPECT_TRUE(reference.complete) << "seed " << seed;
    for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      ThreadedRuntime rt(RuntimeOptions{.num_threads = threads});
      const QueryFp got = RunGarageSaleQuery(&rt, seed);
      ASSERT_EQ(reference, got)
          << "seed " << seed << " threads " << threads;
      rt.Shutdown();
    }
  }
}

// --- churn equivalence -------------------------------------------------------

/// The final converged *sync-layer* state of every live synced peer: the
/// version vector plus every live (non-tombstoned, non-presence) record,
/// keyed by origin and the semantic entry fields. This — not the raw
/// projection catalog — is what anti-entropy guarantees converges
/// identically on every backend: the projection additionally absorbs
/// referral-cache entries learned *during query resolution*, and a query
/// racing a failure window takes latency-dependent paths (the simulator
/// models per-hop latency, the threaded runtime delivers at send time),
/// so those best-effort cache side effects legitimately differ. Local
/// receive stamps (stamped_at, LastHeard) are excluded for the same
/// reason; the parameters below keep the TTL boundary out of reach so
/// stamps can't feed back into liveness (see RunChurn).
std::vector<std::set<std::string>> LiveCatalogKeySets(
    const workload::ChurnScenario& scenario) {
  std::vector<std::set<std::string>> out;
  for (const peer::Peer* p : scenario.LiveSyncedPeers()) {
    std::set<std::string> keys;
    for (const auto& [o, s] : p->sync()->versioned().vector()) {
      keys.insert("vec|" + o + "|" + std::to_string(s));
    }
    for (const auto& [key, rec] : p->sync()->versioned().records()) {
      if (rec.tombstone) continue;
      if (rec.entry.kind == catalog::SyncEntryKind::kPresence) continue;
      const catalog::IndexEntry& e = rec.entry.entry;
      keys.insert(rec.version.origin + "|" + rec.entry.urn + "|" +
                  std::to_string(static_cast<int>(e.level)) + "|" +
                  e.area.ToString() + "|" + e.server + "|" + e.xpath);
    }
    out.push_back(std::move(keys));
  }
  return out;
}

struct ChurnFp {
  size_t fails = 0, recovers = 0, departs = 0, joins = 0;
  size_t queries_submitted = 0;
  std::vector<std::set<std::string>> catalogs;
  bool operator==(const ChurnFp&) const = default;
};

ChurnFp RunChurn(net::Transport* transport, uint64_t seed) {
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(transport, params);
  workload::ChurnParams churn;
  churn.seed = seed;
  // Gossip starts when the build phase drains, and the drain ends at a
  // slightly different clock value per backend (the simulator's last
  // delivery carries latency, the threaded clock stops at the last
  // timer), so every tick grid is shifted by a small non-representable
  // epoch. Two knife edges follow, and the parameters keep ≥ 2 s of
  // slack on both:
  //   * the refresh interval must NOT be a multiple of the gossip tick,
  //     or `now - last_refresh >= interval` compares exactly equal
  //     values and an ulp of the epoch decides it (10 with a 4 s tick
  //     means heartbeats every 12 s with 2 s slack);
  //   * the refresh horizon (derived as duration_seconds) must NOT lie
  //     on the tick grid, or `now <= horizon` does the same (62 keeps a
  //     2 s margin from every grid point).
  churn.duration_seconds = 62;
  churn.event_interval_seconds = 8;
  churn.downtime_seconds = 16;
  churn.query_interval_seconds = 20;
  churn.convergence_tail_seconds = 58;
  churn.sync.gossip_interval_seconds = 4;
  churn.sync.refresh_interval_seconds = 10;
  // TTL beyond the scenario horizon (~126 s), so liveness expiry never
  // fires. Expiry compares `now - LastHeard(origin)` against the TTL,
  // and LastHeard is a *local receive* stamp: it moves by per-hop
  // latency (simulator vs zero-latency runtime) and by a whole gossip
  // tick when concurrent mailbox arrival order changes which exchange
  // first delivers a record. Near a TTL boundary that flips live/dead —
  // a genuine timing sensitivity, not a runtime bug — so the
  // equivalence scenario keeps the boundary out of reach and leaves TTL
  // policy to sync_test. Everything else (tombstones, restamp-on-
  // recovery, LWW merge) is order-invariant and checked exactly.
  churn.sync.entry_ttl_seconds = 300;
  workload::ChurnScenario scenario(transport, &net, churn);
  scenario.EnableSyncEverywhere();
  scenario.Run();
  ChurnFp fp;
  fp.fails = scenario.stats().fails;
  fp.recovers = scenario.stats().recovers;
  fp.departs = scenario.stats().departs;
  fp.joins = scenario.stats().joins;
  fp.queries_submitted = scenario.stats().queries_submitted;
  fp.catalogs = LiveCatalogKeySets(scenario);
  return fp;
}

// Churn + gossip, the most order-sensitive scenario in the repo: the
// seeded membership trace is identical by construction, and the
// sync-layer state (version vectors + live records) must converge to
// exactly the simulator's on every peer. (Query outcomes *during*
// active churn race against failure windows and are compared across
// thread counts below, not against the simulator.)
TEST(RuntimeEquivalence, ChurnFinalCatalogsMatchSimulator) {
  const size_t seeds = EquivSeeds(40);
  for (uint64_t seed = 3; seed < 3 + seeds; ++seed) {
    net::Simulator sim;
    const ChurnFp reference = RunChurn(&sim, seed);
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      ThreadedRuntime rt(RuntimeOptions{.num_threads = threads});
      const ChurnFp got = RunChurn(&rt, seed);
      ASSERT_EQ(reference, got)
          << "seed " << seed << " threads " << threads;
      rt.Shutdown();
    }
  }
}

// Thread-count invariance under churn, including mid-flight query
// outcomes: whatever the pool size, the same seed ends the same way.
TEST(RuntimeEquivalence, ChurnInvariantAcrossThreadCounts) {
  const size_t seeds = std::max<size_t>(1, EquivSeeds(40) / 3);
  for (uint64_t seed = 3; seed < 3 + seeds; ++seed) {
    ThreadedRuntime rt1(RuntimeOptions{.num_threads = 1});
    const ChurnFp one = RunChurn(&rt1, seed);
    rt1.Shutdown();
    ThreadedRuntime rt4(RuntimeOptions{.num_threads = 4});
    const ChurnFp four = RunChurn(&rt4, seed);
    rt4.Shutdown();
    ASSERT_EQ(one, four) << "seed " << seed;
  }
}

// --- mailbox backpressure ----------------------------------------------------

class SlowSink : public net::PeerNode {
 public:
  SlowSink(net::Transport* t, std::chrono::microseconds delay)
      : delay_(delay) {
    id = t->Register(this);
  }
  void HandleMessage(const net::Message&) override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    received.fetch_add(1, std::memory_order_relaxed);
  }
  net::PeerId id = net::kNoPeer;
  std::atomic<size_t> received{0};

 private:
  std::chrono::microseconds delay_;
};

// An external (non-worker) sender flooding a slow peer through a tiny
// mailbox must block — never drop — and every message must still arrive.
TEST(RuntimeBackpressure, ExternalSenderBlocksAndNothingIsLost) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 2, .mailbox_capacity = 4});
  SlowSink sink(&rt, std::chrono::microseconds(200));
  rt.Run();  // start the pool (backpressure engages once it is live)
  constexpr size_t kSends = 400;
  for (size_t i = 0; i < kSends; ++i) {
    net::Message m;
    m.from = net::kNoPeer;
    m.to = sink.id;
    m.kind = "flood";
    m.size_bytes = 64;
    rt.Send(std::move(m));
  }
  rt.Run();
  EXPECT_EQ(sink.received.load(), kSends);
  const net::NetStats& merged = std::as_const(rt).stats();
  EXPECT_EQ(merged.messages, kSends);
  EXPECT_GT(merged.mailbox_backpressure_waits, 0u)
      << "a 400-message flood through a 4-slot mailbox never blocked";
  rt.Shutdown();
}

class FloodOnGo : public net::PeerNode {
 public:
  FloodOnGo(net::Transport* t, size_t burst) : t_(t), burst_(burst) {
    id = t->Register(this);
  }
  void set_target(net::PeerId target) { target_ = target; }
  void HandleMessage(const net::Message&) override {
    for (size_t i = 0; i < burst_; ++i) {
      net::Message m;
      m.from = id;
      m.to = target_;
      m.kind = "burst";
      m.size_bytes = 64;
      t_->Send(std::move(m));
    }
  }
  net::PeerId id = net::kNoPeer;

 private:
  net::Transport* t_;
  net::PeerId target_ = net::kNoPeer;
  size_t burst_;
};

// A worker-thread sender must never block on a full mailbox (deadlock
// hazard); it overflows the bound and the overflow is counted.
TEST(RuntimeBackpressure, WorkerSenderOverflowsInsteadOfBlocking) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 2, .mailbox_capacity = 2});
  FloodOnGo flooder(&rt, /*burst=*/64);
  SlowSink sink(&rt, std::chrono::microseconds(500));
  flooder.set_target(sink.id);
  net::Message go;
  go.from = net::kNoPeer;
  go.to = flooder.id;
  go.kind = "go";
  go.size_bytes = 8;
  rt.Send(std::move(go));
  rt.Run();
  EXPECT_EQ(sink.received.load(), 64u);
  const net::NetStats& merged = std::as_const(rt).stats();
  EXPECT_GT(merged.mailbox_soft_overflows, 0u)
      << "a 64-message worker burst into a 2-slot mailbox never overflowed";
  rt.Shutdown();
}

// --- graceful shutdown -------------------------------------------------------

// Shutdown() drains queued mail before joining the pool; afterwards the
// runtime refuses new work instead of crashing.
TEST(RuntimeShutdown, DrainsPendingMailThenRefusesNewWork) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 4});
  SlowSink sink(&rt, std::chrono::microseconds(50));
  rt.Run();  // start the pool
  constexpr size_t kSends = 200;
  for (size_t i = 0; i < kSends; ++i) {
    net::Message m;
    m.from = net::kNoPeer;
    m.to = sink.id;
    m.kind = "drainme";
    m.size_bytes = 32;
    rt.Send(std::move(m));
  }
  rt.Shutdown();
  EXPECT_EQ(sink.received.load(), kSends) << "Shutdown lost queued mail";
  // Post-shutdown sends are no-ops, not crashes.
  net::Message late;
  late.from = net::kNoPeer;
  late.to = sink.id;
  late.kind = "late";
  late.size_bytes = 32;
  rt.Send(std::move(late));
  EXPECT_EQ(sink.received.load(), kSends);
  // Idempotent.
  rt.Shutdown();
}

// Destroying a never-started runtime must be clean (no pool to join).
TEST(RuntimeShutdown, UnusedRuntimeDestructsCleanly) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 8});
  SlowSink sink(&rt, std::chrono::microseconds(0));
  (void)sink;
}

// --- sharded stats -----------------------------------------------------------

// Per-thread shards must merge to the whole truth: per-kind counts sum
// to the totals, and a full garage-sale build over 8 threads agrees with
// the merged message count regardless of which worker tallied each send.
TEST(RuntimeStats, ShardsMergeToConsistentTotals) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 8});
  const QueryFp fp = RunGarageSaleQuery(&rt, /*seed=*/17);
  EXPECT_TRUE(fp.complete);
  const net::NetStats& merged = std::as_const(rt).stats();
  EXPECT_GT(merged.messages, 0u);
  EXPECT_GT(merged.bytes, 0u);
  uint64_t by_kind_total = 0;
  merged.messages_by_kind.ForEachSorted(
      [&](std::string_view, uint64_t count) { by_kind_total += count; });
  EXPECT_EQ(by_kind_total, merged.messages)
      << "per-kind shard merge disagrees with the message total";
  rt.Shutdown();
}

// ClearStats zeroes every shard, including worker shards.
TEST(RuntimeStats, ClearStatsResetsAllShards) {
  ThreadedRuntime rt(RuntimeOptions{.num_threads = 4});
  (void)RunGarageSaleQuery(&rt, /*seed=*/5);
  EXPECT_GT(std::as_const(rt).stats().messages, 0u);
  rt.ClearStats();
  EXPECT_EQ(std::as_const(rt).stats().messages, 0u);
  EXPECT_EQ(std::as_const(rt).stats().bytes, 0u);
  rt.Shutdown();
}

}  // namespace
}  // namespace mqp
