#include <gtest/gtest.h>

#include "common/rng.h"
#include "ns/category_path.h"
#include "ns/hierarchy.h"
#include "ns/interest.h"
#include "ns/urn.h"

namespace mqp::ns {
namespace {

TEST(CategoryPathTest, ParseSlashAndDotForms) {
  auto p = CategoryPath::Parse("USA/OR/Portland");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->depth(), 3u);
  EXPECT_EQ(p->leaf(), "Portland");
  auto q = CategoryPath::Parse("USA.OR.Portland");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*p, *q);
}

TEST(CategoryPathTest, TopForms) {
  for (const char* s : {"*", "", "  "}) {
    auto p = CategoryPath::Parse(s);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(p->IsTop());
    EXPECT_EQ(p->ToString(), "*");
  }
}

TEST(CategoryPathTest, EmptySegmentRejected) {
  EXPECT_FALSE(CategoryPath::Parse("USA//Portland").ok());
  EXPECT_FALSE(CategoryPath::Parse("USA..Portland").ok());
}

TEST(CategoryPathTest, ParentChild) {
  auto p = *CategoryPath::Parse("USA/OR/Portland");
  EXPECT_EQ(p.Parent().ToString(), "USA/OR");
  EXPECT_EQ(p.Parent().Parent().Parent().ToString(), "*");
  EXPECT_EQ(p.Parent().Child("Eugene").ToString(), "USA/OR/Eugene");
  EXPECT_TRUE(CategoryPath().Parent().IsTop());
}

TEST(CategoryPathTest, AncestorSemantics) {
  auto top = CategoryPath();
  auto usa = *CategoryPath::Parse("USA");
  auto orstate = *CategoryPath::Parse("USA/OR");
  auto pdx = *CategoryPath::Parse("USA/OR/Portland");
  auto fr = *CategoryPath::Parse("France");
  EXPECT_TRUE(top.IsAncestorOrSame(pdx));
  EXPECT_TRUE(usa.IsAncestorOrSame(pdx));
  EXPECT_TRUE(orstate.IsAncestorOrSame(pdx));
  EXPECT_TRUE(pdx.IsAncestorOrSame(pdx));
  EXPECT_FALSE(pdx.IsAncestorOrSame(orstate));
  EXPECT_FALSE(fr.IsAncestorOrSame(pdx));
  EXPECT_TRUE(pdx.Comparable(usa));
  EXPECT_FALSE(fr.Comparable(usa));
}

TEST(HierarchyTest, AddCreatesAncestors) {
  Hierarchy h("Location");
  ASSERT_TRUE(h.AddPath("USA/OR/Portland").ok());
  EXPECT_TRUE(h.Contains(*CategoryPath::Parse("USA")));
  EXPECT_TRUE(h.Contains(*CategoryPath::Parse("USA/OR")));
  EXPECT_TRUE(h.Contains(CategoryPath()));
  EXPECT_FALSE(h.Contains(*CategoryPath::Parse("USA/WA")));
}

TEST(HierarchyTest, ChildrenOf) {
  Hierarchy h("Loc");
  (void)h.AddPath("USA/OR");
  (void)h.AddPath("USA/WA");
  (void)h.AddPath("France");
  auto top_children = h.ChildrenOf(CategoryPath());
  EXPECT_EQ(top_children.size(), 2u);
  auto usa_children = h.ChildrenOf(*CategoryPath::Parse("USA"));
  ASSERT_EQ(usa_children.size(), 2u);
  EXPECT_EQ(usa_children[0].ToString(), "USA/OR");
}

TEST(HierarchyTest, LeavesAndAll) {
  Hierarchy h("Loc");
  (void)h.AddPath("USA/OR/Portland");
  (void)h.AddPath("USA/OR/Eugene");
  EXPECT_EQ(h.Leaves().size(), 2u);
  // *, USA, USA/OR, 2 cities
  EXPECT_EQ(h.AllCategories().size(), 5u);
  EXPECT_EQ(h.size(), 5u);
}

TEST(HierarchyTest, ApproximateFallsBackToAncestor) {
  Hierarchy h("Loc");
  (void)h.AddPath("USA/OR");
  auto approx = h.Approximate(*CategoryPath::Parse("USA/OR/Portland"));
  EXPECT_EQ(approx.ToString(), "USA/OR");
  approx = h.Approximate(*CategoryPath::Parse("Japan/Tokyo"));
  EXPECT_TRUE(approx.IsTop());
}

TEST(MultiHierarchyTest, ValidateChecksEveryDimension) {
  MultiHierarchy ns = MakeGarageSaleNamespace();
  EXPECT_EQ(ns.dimension_count(), 2u);
  EXPECT_TRUE(ns.DimensionIndex("Location").ok());
  EXPECT_TRUE(ns.DimensionIndex("Merchandise").ok());
  EXPECT_FALSE(ns.DimensionIndex("Color").ok());

  auto ok_cell = MakeCell({"USA/OR/Portland", "Music/CDs"});
  EXPECT_TRUE(ns.Validate(ok_cell.coords()).ok());
  auto bad_cell = MakeCell({"USA/OR/Portland", "Music/Tapes"});
  EXPECT_FALSE(ns.Validate(bad_cell.coords()).ok());
  auto wrong_arity = MakeCell({"USA"});
  EXPECT_FALSE(ns.Validate(wrong_arity.coords()).ok());
}

TEST(InterestCellTest, CoversIsPerDimensionAncestor) {
  auto big = MakeCell({"USA", "Furniture"});
  auto small = MakeCell({"USA/OR/Portland", "Furniture/Chairs"});
  EXPECT_TRUE(big.Covers(small));
  EXPECT_FALSE(small.Covers(big));
  EXPECT_TRUE(big.Covers(big));
  // Mismatched in one dimension: no coverage.
  auto other = MakeCell({"USA/OR/Portland", "Electronics"});
  EXPECT_FALSE(big.Covers(other) && other.Covers(big));
  EXPECT_FALSE(MakeCell({"USA", "Furniture"})
                   .Covers(MakeCell({"France", "Furniture"})));
}

TEST(InterestCellTest, TopCellCoversEverything) {
  auto top = MakeCell({"*", "*"});
  EXPECT_TRUE(top.IsTop());
  EXPECT_TRUE(top.Covers(MakeCell({"France/IDF/Paris", "Music/CDs"})));
}

TEST(InterestCellTest, DimensionalityMismatchNeverCovers) {
  EXPECT_FALSE(MakeCell({"USA"}).Covers(MakeCell({"USA", "Furniture"})));
  EXPECT_FALSE(MakeCell({"USA", "Furniture"}).Covers(MakeCell({"USA"})));
}

TEST(InterestCellTest, OverlapAndIntersect) {
  // Paper §4.1: [Portland, Sporting Goods] and [Oregon, Golf Clubs]
  // overlap on [Portland, Golf Clubs].
  auto a = MakeCell({"USA/OR/Portland", "SportingGoods"});
  auto b = MakeCell({"USA/OR", "SportingGoods/GolfClubs"});
  EXPECT_TRUE(a.Overlaps(b));
  auto inter = a.Intersect(b);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->ToString(), "(USA.OR.Portland,SportingGoods.GolfClubs)");

  auto c = MakeCell({"France", "SportingGoods"});
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_FALSE(a.Intersect(c).ok());
}

TEST(InterestCellTest, CoverageImpliesOverlap) {
  auto big = MakeCell({"USA", "*"});
  auto small = MakeCell({"USA/WA", "Electronics/TV"});
  EXPECT_TRUE(big.Covers(small));
  EXPECT_TRUE(big.Overlaps(small));
  EXPECT_TRUE(small.Overlaps(big));
}

TEST(InterestAreaTest, ParseAndToString) {
  auto area = InterestArea::Parse(
      "(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)");
  ASSERT_TRUE(area.ok()) << area.status();
  EXPECT_EQ(area->size(), 2u);
  EXPECT_EQ(area->ToString(),
            "(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)");
}

TEST(InterestAreaTest, FigureFiveAreas) {
  // Area (a): Vancouver-Portland furniture; area (b): everything in
  // Portland.
  auto a = InterestArea::Parse(
      "(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)");
  auto b = InterestArea::Parse("(USA.OR.Portland,*)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->Overlaps(*b));
  EXPECT_FALSE(a->Covers(*b));
  EXPECT_FALSE(b->Covers(*a));  // (b) doesn't include Vancouver
  auto inter = a->Intersect(*b);
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_EQ(inter.ToString(), "(USA.OR.Portland,Furniture)");
}

TEST(InterestAreaTest, CoversNeedsEveryCellCovered) {
  auto big = *InterestArea::Parse("(USA,Furniture)+(USA,Music)");
  auto small = *InterestArea::Parse(
      "(USA.OR.Portland,Furniture.Chairs)+(USA.WA,Music.CDs)");
  EXPECT_TRUE(big.Covers(small));
  auto partial = *InterestArea::Parse("(USA,Furniture)");
  EXPECT_FALSE(partial.Covers(small));
}

TEST(InterestAreaTest, NormalizedDropsDominatedAndDuplicateCells) {
  auto area = *InterestArea::Parse(
      "(USA.OR,Furniture)+(USA,*)+(USA.OR,Furniture)+(France,Music)");
  auto norm = area.Normalized();
  EXPECT_EQ(norm.ToString(), "(France,Music)+(USA,*)");
}

TEST(InterestAreaTest, UnionNormalizes) {
  auto a = *InterestArea::Parse("(USA.OR,Furniture)");
  auto b = *InterestArea::Parse("(USA,*)");
  EXPECT_EQ(a.Union(b).ToString(), "(USA,*)");
}

TEST(InterestAreaTest, EmptyAreaBehaviour) {
  InterestArea empty;
  auto a = *InterestArea::Parse("(USA,*)");
  EXPECT_TRUE(a.Covers(empty));   // vacuous
  EXPECT_TRUE(empty.Covers(empty));
  EXPECT_FALSE(empty.Covers(a));
  EXPECT_FALSE(empty.Overlaps(a));
  EXPECT_EQ(empty.ToString(), "");
}

TEST(UrnTest, ParseRoundTrip) {
  auto u = Urn::Parse("urn:ForSale:Portland-CDs");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->nid(), "ForSale");
  EXPECT_EQ(u->nss(), "Portland-CDs");
  EXPECT_EQ(u->ToString(), "urn:ForSale:Portland-CDs");
  EXPECT_FALSE(u->IsInterestArea());
}

TEST(UrnTest, CaseInsensitiveScheme) {
  EXPECT_TRUE(Urn::Parse("URN:X:Y").ok());
  EXPECT_TRUE(Urn::Parse("Urn:X:Y").ok());
}

TEST(UrnTest, Malformed) {
  EXPECT_FALSE(Urn::Parse("urn:OnlyNid").ok());
  EXPECT_FALSE(Urn::Parse("notaurn:X:Y").ok());
  EXPECT_FALSE(Urn::Parse("urn::nss").ok());
  EXPECT_FALSE(Urn::Parse("urn:nid:").ok());
}

TEST(UrnTest, InterestAreaRoundTrip) {
  // The paper's §3.4 example URN.
  auto area = *InterestArea::Parse(
      "(USA.OR.Portland,Furniture)+(USA.WA.Vancouver,Furniture)");
  Urn urn = AreaToUrn(area);
  EXPECT_EQ(urn.ToString(),
            "urn:InterestArea:(USA.OR.Portland,Furniture)+"
            "(USA.WA.Vancouver,Furniture)");
  auto parsed = Urn::Parse(urn.ToString());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->IsInterestArea());
  auto back = parsed->ToInterestArea();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, area);
}

TEST(UrnTest, NonAreaUrnRejectsAreaDecode) {
  auto u = *Urn::Parse("urn:CD:TrackListings");
  EXPECT_FALSE(u.ToInterestArea().ok());
}

// --- property tests over random cells --------------------------------------

class CoverageProperties : public ::testing::TestWithParam<uint64_t> {};

InterestCell RandomCell(Rng* rng, const MultiHierarchy& ns) {
  std::vector<CategoryPath> coords;
  for (size_t d = 0; d < ns.dimension_count(); ++d) {
    auto all = ns.dimension(d).AllCategories();
    coords.push_back(all[rng->NextBelow(all.size())]);
  }
  return InterestCell(std::move(coords));
}

TEST_P(CoverageProperties, CoverageIsReflexiveTransitiveAndImpliesOverlap) {
  Rng rng(GetParam());
  MultiHierarchy ns = MakeGarageSaleNamespace();
  for (int i = 0; i < 50; ++i) {
    auto a = RandomCell(&rng, ns);
    auto b = RandomCell(&rng, ns);
    auto c = RandomCell(&rng, ns);
    EXPECT_TRUE(a.Covers(a));
    if (a.Covers(b) && b.Covers(c)) {
      EXPECT_TRUE(a.Covers(c)) << a.ToString() << " " << b.ToString() << " "
                               << c.ToString();
    }
    if (a.Covers(b)) {
      EXPECT_TRUE(a.Overlaps(b));
      EXPECT_TRUE(b.Overlaps(a));
    }
    // Overlap is symmetric.
    EXPECT_EQ(a.Overlaps(b), b.Overlaps(a));
    // Intersection is covered by both and overlaps both.
    if (a.Overlaps(b)) {
      auto inter = a.Intersect(b);
      ASSERT_TRUE(inter.ok());
      EXPECT_TRUE(a.Covers(*inter));
      EXPECT_TRUE(b.Covers(*inter));
    }
    // Antisymmetry: mutual coverage implies equality.
    if (a.Covers(b) && b.Covers(a)) {
      EXPECT_EQ(a, b);
    }
  }
}

TEST_P(CoverageProperties, AreaParseToStringRoundTrip) {
  Rng rng(GetParam());
  MultiHierarchy ns = MakeGarageSaleNamespace();
  InterestArea area;
  const uint64_t cells = 1 + rng.NextBelow(4);
  for (uint64_t i = 0; i < cells; ++i) {
    area.AddCell(RandomCell(&rng, ns));
  }
  auto parsed = InterestArea::Parse(area.ToString());
  ASSERT_TRUE(parsed.ok()) << area.ToString();
  EXPECT_EQ(*parsed, area);
  // Normalization is idempotent and preserves coverage both ways.
  auto norm = area.Normalized();
  EXPECT_EQ(norm.Normalized(), norm);
  EXPECT_TRUE(norm.Covers(area));
  EXPECT_TRUE(area.Covers(norm));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperties,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace mqp::ns
