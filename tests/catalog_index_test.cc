// Randomized equivalence property test for indexed catalog resolution.
//
// The AreaIndex + binding cache must be invisible: for any hierarchy,
// catalog content, mutation history (server departures, exact removals —
// the gossip-expiry projection path) and request area, the indexed
// ResolveArea must return bindings identical to the pre-index linear
// scan (Catalog::set_use_area_index(false)), and a cached re-resolution
// must return the same binding again. Also pins PathInterner interval
// semantics against the string-compare reference and the incremental
// entries() snapshot against a shadow model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "ns/path_interner.h"

namespace mqp::catalog {
namespace {

using ns::CategoryPath;
using ns::InterestArea;
using ns::InterestCell;
using ns::PathId;
using ns::PathInterner;

// --- generators ----------------------------------------------------------------

// A small random label alphabet keeps collision (shared prefixes,
// ancestor chains) likely, which is where index bugs would hide.
std::string RandomLabel(Rng* rng) {
  static const char* kLabels[] = {"a", "b", "c", "d", "e"};
  return kLabels[rng->NextBelow(5)];
}

CategoryPath RandomPath(Rng* rng, size_t max_depth) {
  const size_t depth = rng->NextBelow(max_depth + 1);  // 0 = top
  std::vector<std::string> segs;
  segs.reserve(depth);
  for (size_t i = 0; i < depth; ++i) segs.push_back(RandomLabel(rng));
  return CategoryPath(std::move(segs));
}

InterestCell RandomCell(Rng* rng, size_t dims, size_t max_depth) {
  std::vector<CategoryPath> coords;
  coords.reserve(dims);
  for (size_t d = 0; d < dims; ++d) coords.push_back(RandomPath(rng, max_depth));
  return InterestCell(std::move(coords));
}

InterestArea RandomArea(Rng* rng, size_t dims, size_t max_depth) {
  InterestArea area;
  const size_t cells = 1 + rng->NextBelow(3);
  for (size_t c = 0; c < cells; ++c) {
    area.AddCell(RandomCell(rng, dims, max_depth));
  }
  return area;
}

IndexEntry RandomEntry(Rng* rng, size_t dims) {
  IndexEntry e;
  e.level = rng->NextBool(0.3) ? HoldingLevel::kIndex : HoldingLevel::kBase;
  e.area = RandomArea(rng, dims, 3);
  e.server = "10.0.0." + std::to_string(rng->NextBelow(8)) + ":9020";
  if (e.level == HoldingLevel::kBase && rng->NextBool(0.8)) {
    e.xpath = "/data[id=c" + std::to_string(rng->NextBelow(4)) + "]";
  }
  e.delay_minutes = rng->NextBool(0.25) ? 15 * (1 + rng->NextBelow(3)) : 0;
  return e;
}

bool SameBinding(const Binding& a, const Binding& b) {
  return a.urn == b.urn && a.dimension_fields == b.dimension_fields &&
         a.alternatives == b.alternatives;
}

// Shadow of the pre-index entry storage: a plain vector with the same
// dedup/removal semantics, for checking the incremental entries() view.
struct ShadowEntries {
  std::vector<IndexEntry> entries;

  void Add(const IndexEntry& e) {
    for (const auto& x : entries) {
      if (x == e) return;
    }
    entries.push_back(e);
  }
  void RemoveServer(const std::string& server) {
    std::erase_if(entries,
                  [&](const IndexEntry& e) { return e.server == server; });
  }
  bool Remove(const IndexEntry& e) {
    const size_t before = entries.size();
    std::erase_if(entries, [&](const IndexEntry& x) { return x == e; });
    return entries.size() != before;
  }
};

// --- the property --------------------------------------------------------------

// One seeded scenario: build, mutate, resolve, compare. Returns the
// number of resolutions compared (so the harness can prove coverage).
size_t RunCase(uint64_t seed) {
  Rng rng(seed);
  const size_t dims = 1 + rng.NextBelow(3);  // 1..3 dimensions
  ns::MultiHierarchy hierarchy;  // outlives the catalogs referencing it
  Catalog indexed;
  Catalog linear;
  linear.set_use_area_index(false);
  linear.set_use_binding_cache(false);
  ShadowEntries shadow;
  size_t compared = 0;

  auto apply_both = [&](auto&& fn) {
    fn(indexed);
    fn(linear);
  };
  // Resolves interleave with the mutations below, so every TouchMutation
  // site (and the hierarchy-version epoch) must actually invalidate the
  // indexed catalog's binding cache — the linear reference never caches.
  auto compare_resolve = [&](const InterestArea& request) {
    const std::string urn = "urn:x-mqp:area:" + request.ToString();
    const Binding reference = linear.ResolveArea(request, urn);
    const Binding via_index = indexed.ResolveArea(request, urn);
    EXPECT_TRUE(SameBinding(via_index, reference))
        << "seed=" << seed << " request=" << request.ToString()
        << "\n  indexed: " << via_index.ToString()
        << "\n  linear:  " << reference.ToString();
    const Binding cached = indexed.ResolveArea(request, urn);
    EXPECT_TRUE(SameBinding(cached, reference))
        << "seed=" << seed << " cached divergence on " << request.ToString();
    ++compared;
  };

  if (rng.NextBool(0.5)) {
    apply_both([&](Catalog& c) {
      c.set_dimension_fields({"f0", "f1", "f2"});
    });
  }
  if (rng.NextBool(0.3)) {
    const std::string owner = "10.0.0." + std::to_string(rng.NextBelow(8)) +
                              ":9020";
    apply_both([&](Catalog& c) { c.set_owner(owner); });
  }
  {
    const InterestArea authority = RandomArea(&rng, dims, 2);
    const bool authoritative = rng.NextBool(0.5);
    apply_both([&](Catalog& c) { c.SetAuthority(authority, authoritative); });
  }
  const bool with_hierarchy = rng.NextBool(0.5);
  if (with_hierarchy) {
    for (size_t d = 0; d < dims; ++d) {
      hierarchy.AddDimension("d" + std::to_string(d));
      for (int i = 0; i < 6; ++i) {
        hierarchy.dimension(d).Add(RandomPath(&rng, 3));
      }
    }
    // §3.5 approximation now rewrites unknown request categories; both
    // catalogs share the namespace, so results must still agree.
    apply_both([&](Catalog& c) { c.set_hierarchies(&hierarchy); });
  }

  // Build + mutate: interleave adds with removals so slot reuse, index
  // removal and the by-server lists all get exercised.
  const size_t ops = 10 + rng.NextBelow(40);
  std::vector<IndexEntry> ever_added;
  for (size_t i = 0; i < ops; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.70 || ever_added.empty()) {
      IndexEntry e = RandomEntry(&rng, dims);
      ever_added.push_back(e);
      shadow.Add(e);
      apply_both([&](Catalog& c) { c.AddEntry(e); });
    } else if (roll < 0.85) {
      // Exact removal: the sync projection path for tombstones/expiry.
      const IndexEntry& e = rng.Pick(ever_added);
      const bool removed_shadow = shadow.Remove(e);
      bool removed_indexed = false, removed_linear = false;
      removed_indexed = indexed.RemoveEntry(e);
      removed_linear = linear.RemoveEntry(e);
      EXPECT_EQ(removed_indexed, removed_shadow);
      EXPECT_EQ(removed_linear, removed_shadow);
    } else {
      // Departure: every entry naming one server goes at once.
      const std::string server =
          "10.0.0." + std::to_string(rng.NextBelow(8)) + ":9020";
      shadow.RemoveServer(server);
      apply_both([&](Catalog& c) { c.RemoveServer(server); });
    }
    // Resolve mid-history: the next mutation must invalidate whatever
    // the indexed catalog just cached.
    if (rng.NextBool(0.2)) {
      compare_resolve(RandomArea(&rng, dims, 3));
    }
    if (with_hierarchy && rng.NextBool(0.1)) {
      // Namespace growth moves the cache epoch's hierarchy component.
      hierarchy.dimension(rng.NextBelow(dims)).Add(RandomPath(&rng, 3));
    }
  }

  // A few intensional statements among the live servers exercise the
  // statement-driven alternatives (and the by-server xpath lookup).
  const size_t num_statements = rng.NextBelow(3);
  for (size_t i = 0; i < num_statements; ++i) {
    IntensionalStatement st;
    st.relation =
        rng.NextBool(0.5) ? IntensionRelation::kEquals
                          : IntensionRelation::kContains;
    st.lhs.level =
        rng.NextBool(0.3) ? HoldingLevel::kIndex : HoldingLevel::kBase;
    st.lhs.area = RandomArea(&rng, dims, 2);
    st.lhs.server = "10.0.0." + std::to_string(rng.NextBelow(8)) + ":9020";
    HoldingRef r;
    r.level = HoldingLevel::kBase;
    r.area = RandomArea(&rng, dims, 2);
    r.server = "10.0.0." + std::to_string(rng.NextBelow(8)) + ":9020";
    r.delay_minutes = rng.NextBool(0.5) ? 30 : 0;
    st.rhs.push_back(std::move(r));
    apply_both([&](Catalog& c) { c.AddStatement(st); });
  }

  // The incremental storage must present exactly the reference view.
  EXPECT_EQ(indexed.entries(), shadow.entries);
  EXPECT_EQ(linear.entries(), shadow.entries);

  // Final quiescent-state resolutions; cached re-resolution must agree
  // with itself and with the linear reference.
  const size_t requests = 3 + rng.NextBelow(4);
  for (size_t q = 0; q < requests; ++q) {
    compare_resolve(RandomArea(&rng, dims, 3));
  }
  EXPECT_GT(indexed.resolve_stats().binding_cache_hits, 0u);
  return compared;
}

TEST(CatalogIndexPropertyTest, IndexedResolutionMatchesLinearReference) {
  size_t total = 0;
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    total += RunCase(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at seed " << seed;
    }
  }
  // ~3-6 resolutions per case; make the coverage claim explicit.
  EXPECT_GE(total, 3000u);
}

// Directed regression: removal via slot reuse keeps insertion order.
TEST(CatalogIndexPropertyTest, SlotReuseKeepsInsertionOrder) {
  Catalog cat;
  cat.SetAuthority(InterestArea(InterestCell()), true);
  auto entry = [](const char* area, const char* server) {
    IndexEntry e;
    e.area = *InterestArea::Parse(area);
    e.server = server;
    e.xpath = "/data";
    return e;
  };
  cat.AddEntry(entry("(a,b)", "s1"));
  cat.AddEntry(entry("(a,c)", "s2"));
  cat.RemoveEntry(entry("(a,b)", "s1"));  // frees slot 0
  cat.AddEntry(entry("(a,d)", "s3"));     // reuses slot 0, newest seq
  const auto entries = cat.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].server, "s2");
  EXPECT_EQ(entries[1].server, "s3");
}

// Directed regression: a copied catalog's index must not share sorted
// views (bucket pointers) with the source — resolving from the copy
// after the original is gone and mutating the copy must both work.
TEST(CatalogIndexPropertyTest, CopiedCatalogResolvesAfterSourceDies) {
  auto entry = [](const char* area, const char* server) {
    IndexEntry e;
    e.area = *InterestArea::Parse(area);
    e.server = server;
    e.xpath = "/data";
    return e;
  };
  const InterestArea request = *InterestArea::Parse("(a.b,x)");
  Catalog copy;
  {
    Catalog original;
    original.SetAuthority(*InterestArea::Parse("(*,*)"), true);
    for (int i = 0; i < 32; ++i) {
      copy.AddEntry(entry(("(a.b,x" + std::to_string(i) + ")").c_str(), "s"));
    }
    original.AddEntry(entry("(a.b,x)", "s1"));
    original.AddEntry(entry("(a,x)", "s2"));
    // Warm the sorted views, then copy.
    (void)original.ResolveArea(request, "urn:warm");
    copy = original;
  }
  Catalog reference = copy;
  reference.set_use_area_index(false);
  reference.set_use_binding_cache(false);
  const Binding got = copy.ResolveArea(request, "urn:copy");
  const Binding want = reference.ResolveArea(request, "urn:copy");
  EXPECT_TRUE(SameBinding(got, want)) << got.ToString() << " vs "
                                      << want.ToString();
  ASSERT_EQ(got.alternatives.size(), 1u);
  EXPECT_EQ(got.alternatives[0].sources.size(), 2u);
  // The copy stays independently mutable and correct.
  copy.RemoveServer("s2");
  EXPECT_EQ(copy.ResolveArea(request, "urn:copy2").alternatives[0]
                .sources.size(),
            1u);
}

// --- PathInterner unit coverage ------------------------------------------------

TEST(PathInternerTest, IntervalAncestryMatchesStringReference) {
  Rng rng(7);
  PathInterner interner;
  std::vector<CategoryPath> paths;
  paths.push_back(CategoryPath());  // top
  for (int i = 0; i < 200; ++i) {
    CategoryPath p = RandomPath(&rng, 4);
    interner.Intern(p);
    paths.push_back(std::move(p));
    if (i % 50 != 0) continue;
    // Re-check the whole matrix mid-growth: intervals must rebuild.
    for (const auto& a : paths) {
      for (const auto& b : paths) {
        const PathId ia = interner.Lookup(a);
        const PathId ib = interner.Lookup(b);
        ASSERT_NE(ia, ns::kNoPathId);
        ASSERT_NE(ib, ns::kNoPathId);
        EXPECT_EQ(interner.IsAncestorOrSame(ia, ib), a.IsAncestorOrSame(b));
        EXPECT_EQ(interner.Comparable(ia, ib), a.Comparable(b));
      }
    }
  }
}

TEST(PathInternerTest, DeepestKnownPrefix) {
  PathInterner interner;
  interner.Intern(*CategoryPath::Parse("USA/OR"));
  bool exact = true;
  const PathId p =
      interner.DeepestKnownPrefix(*CategoryPath::Parse("USA/OR/Portland"),
                                  &exact);
  EXPECT_FALSE(exact);
  EXPECT_EQ(interner.PathOf(p).ToString(), "USA/OR");
  const PathId q =
      interner.DeepestKnownPrefix(*CategoryPath::Parse("USA/OR"), &exact);
  EXPECT_TRUE(exact);
  EXPECT_EQ(q, p);
  EXPECT_EQ(interner.DeepestKnownPrefix(*CategoryPath::Parse("France"),
                                        &exact),
            PathInterner::kTopId);
  EXPECT_FALSE(exact);
}

}  // namespace
}  // namespace mqp::catalog
