// Query-language front-end tests: parsing, plan shapes, and end-to-end
// execution over a simulated network.
#include <gtest/gtest.h>

#include "net/simulator.h"
#include "common/strings.h"
#include "engine/operator.h"
#include "query/parser.h"
#include "workload/network_builder.h"
#include "xml/parser.h"

namespace mqp::query {
namespace {

using algebra::OpType;

TEST(QueryParseTest, SelectStarFromUrn) {
  auto plan = Parse("select * from urn:ForSale:Portland-CDs");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->root()->type(), OpType::kUrn);
  EXPECT_EQ(plan->root()->urn(), "urn:ForSale:Portland-CDs");
}

TEST(QueryParseTest, WherePredicate) {
  auto plan = Parse("select * from urn:X:Y where price < 10");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->root()->type(), OpType::kSelect);
  EXPECT_EQ(plan->root()->expr()->ToString(), "price < '10'");
}

TEST(QueryParseTest, ProjectionList) {
  auto plan = Parse("select title, price from urn:X:Y");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->root()->type(), OpType::kProject);
  EXPECT_EQ(plan->root()->fields(),
            (std::vector<std::string>{"title", "price"}));
}

TEST(QueryParseTest, AreaSource) {
  auto plan = Parse("select * from area(\"(USA.OR,Music)\")");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->root()->urn(), "urn:InterestArea:(USA.OR,Music)");
}

TEST(QueryParseTest, JoinOnCondition) {
  auto plan = Parse(
      "select * from urn:A:a join urn:B:b on title = CDtitle "
      "join urn:C:c on song = name");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const auto* outer = plan->root().get();
  ASSERT_EQ(outer->type(), OpType::kJoin);
  EXPECT_EQ(outer->expr()->ToString(), "song = right.name");
  const auto* inner = outer->child(0).get();
  ASSERT_EQ(inner->type(), OpType::kJoin);
  EXPECT_EQ(inner->expr()->ToString(), "title = right.CDtitle");
  EXPECT_EQ(inner->child(0)->urn(), "urn:A:a");
  EXPECT_EQ(outer->child(1)->urn(), "urn:C:c");
}

TEST(QueryParseTest, BooleanOperatorsAndPrecedence) {
  auto plan = Parse(
      "select * from urn:X:Y where a = 1 and b = 2 or not c = 3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // OR binds loosest: ((a AND b) OR (NOT c)).
  EXPECT_EQ(plan->root()->expr()->ToString(),
            "((a = '1' AND b = '2') OR NOT (c = '3'))");
}

TEST(QueryParseTest, ParenthesesOverridePrecedence) {
  auto plan =
      Parse("select * from urn:X:Y where a = 1 and (b = 2 or c = 3)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->root()->expr()->ToString(),
            "(a = '1' AND (b = '2' OR c = '3'))");
}

TEST(QueryParseTest, WithinPredicate) {
  auto plan =
      Parse("select * from urn:X:Y where location within 'USA/OR'");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->root()->expr()->ToString(), "location within 'USA/OR'");
}

TEST(QueryParseTest, ExistsPredicate) {
  auto plan = Parse("select * from urn:X:Y where exists(image)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->root()->expr()->ToString(), "EXISTS(image)");
}

TEST(QueryParseTest, StringLiteralsBothQuotes) {
  auto p1 = Parse("select * from urn:X:Y where name = 'two words'");
  ASSERT_TRUE(p1.ok());
  auto p2 = Parse("select * from urn:X:Y where name = \"two words\"");
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(p1->root()->expr()->Equals(*p2->root()->expr()));
}

TEST(QueryParseTest, Aggregates) {
  auto count = Parse("select count(*) from urn:X:Y");
  ASSERT_TRUE(count.ok()) << count.status();
  ASSERT_EQ(count->root()->type(), OpType::kAggregate);
  EXPECT_EQ(count->root()->agg_func(), algebra::AggFunc::kCount);

  auto avg = Parse("select avg(price) from urn:X:Y group by category");
  ASSERT_TRUE(avg.ok()) << avg.status();
  ASSERT_EQ(avg->root()->type(), OpType::kAggregate);
  EXPECT_EQ(avg->root()->agg_func(), algebra::AggFunc::kAvg);
  EXPECT_EQ(avg->root()->agg_field(), "price");
  EXPECT_EQ(avg->root()->group_by(), "category");
}

TEST(QueryParseTest, OrderLimit) {
  auto plan = Parse(
      "select title from urn:X:Y where price < 10 "
      "order by price desc limit 3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // project(topn(select(urn)))
  ASSERT_EQ(plan->root()->type(), OpType::kProject);
  const auto* topn = plan->root()->child(0).get();
  ASSERT_EQ(topn->type(), OpType::kTopN);
  EXPECT_EQ(topn->limit(), 3u);
  EXPECT_EQ(topn->order_field(), "price");
  EXPECT_FALSE(topn->ascending());
  EXPECT_EQ(topn->child(0)->type(), OpType::kSelect);
}

TEST(QueryParseTest, CaseInsensitiveKeywords) {
  auto plan = Parse("SELECT * FROM urn:X:Y WHERE price < 5 ORDER BY price "
                    "ASC LIMIT 1");
  ASSERT_TRUE(plan.ok()) << plan.status();
}

TEST(QueryParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("select").ok());
  EXPECT_FALSE(Parse("select * from").ok());
  EXPECT_FALSE(Parse("select * from notaurn").ok());
  EXPECT_FALSE(Parse("select * from urn:X:Y where").ok());
  EXPECT_FALSE(Parse("select * from urn:X:Y where price <").ok());
  EXPECT_FALSE(Parse("select * from urn:X:Y limit 5").ok());  // no order
  EXPECT_FALSE(Parse("select * from urn:X:Y group by x").ok());  // no agg
  EXPECT_FALSE(Parse("select sum(*) from urn:X:Y").ok());
  EXPECT_FALSE(Parse("select * from urn:X:Y trailing").ok());
  EXPECT_FALSE(Parse("select * from urn:X:Y where name = 'unterminated").ok());
  EXPECT_FALSE(Parse("select * from area(USA)").ok());  // area needs string
  EXPECT_FALSE(Parse("select * from urn:A:a join urn:B:b").ok());  // no ON
}

TEST(QueryParseTest, PlanSerializesToWireFormat) {
  auto plan = Parse(
      "select title from urn:X:Y where price < 10 order by price limit 2");
  ASSERT_TRUE(plan.ok());
  auto back = algebra::ParsePlan(algebra::SerializePlan(*plan));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(plan->root()->Equals(*back->root()));
}

TEST(QueryEndToEndTest, TextQueryOverGarageSaleNetwork) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 12;
  params.items_per_seller = 8;
  params.seed = 23;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);

  auto plan = Parse(
      "select name, price from area(\"(USA,*)\") "
      "where price < 40 order by price asc limit 5");
  ASSERT_TRUE(plan.ok()) << plan.status();

  peer::QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(std::move(plan).value(),
                          [&](const peer::QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  ASSERT_LE(outcome.items.size(), 5u);
  // Ordered ascending by price; every item projected to name+price.
  double prev = 0;
  for (const auto& item : outcome.items) {
    double price = 0;
    ASSERT_TRUE(mqp::ParseDouble(item->ChildText("price"), &price));
    EXPECT_LT(price, 40);
    EXPECT_GE(price, prev);
    prev = price;
    EXPECT_NE(item->Child("name"), nullptr);
    EXPECT_EQ(item->Child("location"), nullptr);  // projected away
  }
}

TEST(QueryEndToEndTest, CountByCategory) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 10;
  params.items_per_seller = 5;
  params.seed = 29;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);

  auto plan =
      Parse("select count(*) from area(\"(USA.OR,*)\") group by category");
  ASSERT_TRUE(plan.ok()) << plan.status();
  peer::QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(std::move(plan).value(),
                          [&](const peer::QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  // The per-category counts sum to the ground-truth item count.
  size_t total = 0;
  for (const auto& row : outcome.items) {
    int64_t n = 0;
    ASSERT_TRUE(mqp::ParseInt64(row->ChildText("count"), &n));
    total += static_cast<size_t>(n);
  }
  EXPECT_EQ(total, workload::GarageSaleGenerator::CountInArea(
                       net.all_items, *ns::InterestArea::Parse("(USA.OR,*)")));
}

}  // namespace
}  // namespace mqp::query
