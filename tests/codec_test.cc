// Streaming XML codec: token reader/writer equivalence with the DOM
// reference, randomized plan decode/encode equivalence (1000 seeds),
// wire-size pinning, entity round-trip properties, and byte-offset
// errors on malformed inputs from both paths.
#include <gtest/gtest.h>

#include <optional>

#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "catalog/versioned.h"
#include "common/rng.h"
#include "common/strings.h"
#include "wire/body_codec.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/token_reader.h"
#include "xml/token_writer.h"
#include "xml/writer.h"

namespace mqp {
namespace {

using algebra::AggFunc;
using algebra::Annotations;
using algebra::Expr;
using algebra::ExprPtr;
using algebra::FieldHistogram;
using algebra::Item;
using algebra::ItemSet;
using algebra::Plan;
using algebra::PlanNode;
using algebra::PlanNodePtr;
using algebra::ProvenanceAction;

// RAII knob flip: the codec knob is process-global state.
class ScopedCodecMode {
 public:
  explicit ScopedCodecMode(bool streaming)
      : saved_(algebra::use_streaming_plan_codec()) {
    algebra::set_use_streaming_plan_codec(streaming);
  }
  ~ScopedCodecMode() { algebra::set_use_streaming_plan_codec(saved_); }

 private:
  bool saved_;
};

// --- randomized inputs ----------------------------------------------------------

// Strings that exercise escaping: entities, both quote kinds, angle
// brackets, plus plain words (never whitespace-only).
std::string RandomSpicyText(Rng* rng) {
  static const char* kSpice[] = {"&",  "<",   ">",    "\"", "'",
                                 "&&", "<b>", "a&b;", "]]>", "&#65;"};
  std::string out = rng->NextWord(3);
  const int pieces = static_cast<int>(rng->NextBelow(4));
  for (int i = 0; i < pieces; ++i) {
    out += kSpice[rng->NextBelow(std::size(kSpice))];
    out += rng->NextWord(2);
  }
  return out;
}

Item RandomItem(Rng* rng) {
  auto n = xml::Node::Element("item");
  n->SetAttr("id", std::to_string(rng->NextBelow(100000)));
  if (rng->NextBool(0.4)) n->SetAttr("note", RandomSpicyText(rng));
  n->AddElementWithText("price", std::to_string(rng->NextBelow(500)));
  if (rng->NextBool(0.6)) {
    n->AddElementWithText("title", RandomSpicyText(rng));
  }
  if (rng->NextBool(0.3)) {
    xml::Node* deep = n->AddElement("seller");
    deep->SetAttr("name", RandomSpicyText(rng));
    deep->AddElementWithText("city", rng->NextWord(6));
  }
  return Item(n.release());
}

ExprPtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.4)) {
    switch (rng->NextBelow(3)) {
      case 0:
        return Expr::Field(rng->NextWord(4));
      case 1:
        return Expr::Literal(RandomSpicyText(rng));
      default:
        return Expr::Exists(rng->NextWord(4));
    }
  }
  switch (rng->NextBelow(4)) {
    case 0:
      return Expr::Compare(
          static_cast<algebra::CompareOp>(rng->NextBelow(7)),
          RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 1:
      return Expr::And(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 2:
      return Expr::Or(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    default:
      return Expr::Not(RandomExpr(rng, depth - 1));
  }
}

void MaybeAnnotate(Rng* rng, PlanNode* node) {
  Annotations& a = node->annotations();
  if (rng->NextBool(0.3)) a.cardinality = rng->NextBelow(100000);
  if (rng->NextBool(0.3)) a.bytes = rng->NextBelow(1u << 20);
  // distinct_keys shares its attribute with union's distinct flag; keep
  // the generator off that collision so annotations round-trip exactly.
  if (rng->NextBool(0.2) && node->type() != algebra::OpType::kUnion) {
    a.distinct_keys = rng->NextBelow(1000);
  }
  if (rng->NextBool(0.2)) {
    a.staleness_minutes = static_cast<int>(rng->NextBelow(120));
  }
  if (rng->NextBool(0.2)) {
    FieldHistogram h;
    h.field = rng->NextWord(4);
    h.min = 1;
    h.max = 100;
    h.total = 10;
    const size_t buckets = 1 + rng->NextBelow(4);
    for (size_t i = 0; i < buckets; ++i) {
      h.counts.push_back(rng->NextBelow(10));
    }
    a.histograms.push_back(std::move(h));
  }
  if (rng->NextBool(0.2)) {
    algebra::TopKBound tk;
    tk.order_field = rng->NextWord(4);
    tk.ascending = rng->NextBool();
    tk.k = 1 + rng->NextBelow(50);
    tk.batch = rng->NextBelow(20);
    tk.cont = rng->NextBelow(100);
    tk.leaf = static_cast<uint32_t>(rng->NextBelow(8));
    if (rng->NextBool(0.5)) {
      tk.has_bound = true;
      tk.bound_key = std::to_string(rng->NextBelow(1000)) + "." +
                     std::to_string(rng->NextBelow(10));
      tk.bound_leaf = static_cast<uint32_t>(rng->NextBelow(8));
    }
    a.topk = std::move(tk);
  }
}

// Random operator DAG. `pool` holds previously built nodes; with some
// probability a node is reused, producing shared sub-DAGs (node-id/ref).
PlanNodePtr RandomNode(Rng* rng, int depth, bool with_items,
                       std::vector<PlanNodePtr>* pool) {
  if (!pool->empty() && rng->NextBool(0.15)) {
    return (*pool)[rng->NextBelow(pool->size())];
  }
  PlanNodePtr node;
  if (depth <= 0) {
    switch (rng->NextBelow(3)) {
      case 0: {
        if (with_items) {
          ItemSet items;
          const size_t n = rng->NextBelow(4);
          for (size_t i = 0; i < n; ++i) items.push_back(RandomItem(rng));
          node = PlanNode::XmlData(std::move(items));
          break;
        }
        node = PlanNode::UrnRef("urn:InterestArea:(USA.OR,*)");
        break;
      }
      case 1:
        node = PlanNode::Url("10.0.0." + std::to_string(rng->NextBelow(99)) +
                                 ":9020",
                             rng->NextBool() ? "/data[id=c1]" : "");
        break;
      default:
        node = PlanNode::UrnRef(
            "urn:ForSale:" + rng->NextWord(5),
            rng->NextBool(0.3) ? "10.0.0.7:9020" : "");
        break;
    }
  } else {
    switch (rng->NextBelow(7)) {
      case 0:
        node = PlanNode::Select(RandomExpr(rng, 2),
                                RandomNode(rng, depth - 1, with_items, pool));
        break;
      case 1:
        node = PlanNode::Project(
            {rng->NextWord(4), rng->NextWord(3)},
            RandomNode(rng, depth - 1, with_items, pool));
        break;
      case 2:
        node = PlanNode::Join(RandomExpr(rng, 2),
                              RandomNode(rng, depth - 1, with_items, pool),
                              RandomNode(rng, depth - 1, with_items, pool));
        break;
      case 3: {
        std::vector<PlanNodePtr> inputs;
        const size_t n = 1 + rng->NextBelow(3);
        for (size_t i = 0; i < n; ++i) {
          inputs.push_back(RandomNode(rng, depth - 1, with_items, pool));
        }
        node = PlanNode::Union(std::move(inputs), rng->NextBool(0.3));
        break;
      }
      case 4:
        node = PlanNode::Difference(
            RandomNode(rng, depth - 1, with_items, pool),
            RandomNode(rng, depth - 1, with_items, pool));
        break;
      case 5:
        node = PlanNode::Aggregate(
            static_cast<AggFunc>(rng->NextBelow(5)), rng->NextWord(4),
            rng->NextBool(0.5) ? rng->NextWord(3) : "",
            RandomNode(rng, depth - 1, with_items, pool));
        break;
      default:
        // Sometimes unbounded (plain ORDER BY): no n attribute on the
        // wire, distinct from every finite limit including 0.
        node = PlanNode::TopN(
            rng->NextBool(0.2)
                ? std::nullopt
                : std::optional<uint64_t>(rng->NextBelow(50)),
            rng->NextWord(4), rng->NextBool(),
            RandomNode(rng, depth - 1, with_items, pool));
        break;
    }
  }
  MaybeAnnotate(rng, node.get());
  pool->push_back(node);
  return node;
}

Plan RandomPlan(uint64_t seed, bool with_items = true) {
  Rng rng(seed);
  std::vector<PlanNodePtr> pool;
  const int depth = 1 + static_cast<int>(rng.NextBelow(4));
  Plan plan(PlanNode::Display("10.0.0.1:9020",
                              RandomNode(&rng, depth, with_items, &pool)));
  plan.set_query_id("q" + std::to_string(seed));
  if (rng.NextBool(0.5)) plan.set_submitted_at(rng.NextDouble() * 100);
  if (rng.NextBool(0.4)) plan.SnapshotOriginal();
  if (rng.NextBool(0.5)) {
    const size_t visits = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < visits; ++i) {
      plan.provenance().Add(
          {"10.0.0." + std::to_string(rng.NextBelow(20)) + ":9020",
           rng.NextDouble() * 10,
           static_cast<ProvenanceAction>(rng.NextBelow(6)),
           rng.NextBool(0.5) ? RandomSpicyText(&rng) : "",
           static_cast<int>(rng.NextBelow(60))});
    }
  }
  if (rng.NextBool(0.3)) {
    plan.policy().time_budget_seconds = 1 + rng.NextDouble() * 10;
    plan.policy().preference = rng.NextBool()
                                   ? algebra::AnswerPreference::kCurrent
                                   : algebra::AnswerPreference::kComplete;
    if (rng.NextBool(0.5)) {
      plan.policy().route_allow = {"10.0.0.3:9020", "10.0.0.4:9020"};
    }
    if (rng.NextBool(0.5)) {
      plan.policy().bind_after.emplace_back("urn:a", "urn:b");
    }
  }
  return plan;
}

// --- token reader vs DOM parser -------------------------------------------------

// Walks tokens and rebuilds a DOM; must equal Parse() on any input the
// DOM parser accepts (MaterializeSubtree *is* that walk).
TEST(TokenReaderTest, MaterializeMatchesDomParserOnRandomTrees) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    auto item = RandomItem(&rng);
    const std::string s = xml::Serialize(*item);
    auto dom = xml::Parse(s);
    ASSERT_TRUE(dom.ok()) << seed << ": " << dom.status();
    xml::TokenReader r(s);
    auto t = r.Next();
    ASSERT_TRUE(t.ok()) << seed << ": " << t.status();
    ASSERT_EQ(t->type, xml::TokenType::kStartElement);
    auto tree = r.MaterializeSubtree();
    ASSERT_TRUE(tree.ok()) << seed << ": " << tree.status();
    EXPECT_TRUE((*tree)->Equals(**dom)) << "seed " << seed << "\n" << s;
    auto end = r.Next();
    ASSERT_TRUE(end.ok());
    EXPECT_EQ(end->type, xml::TokenType::kEndOfInput);
  }
}

TEST(TokenReaderTest, AgreesWithDomOnEntitiesAndCharacterReferences) {
  // Hand-written input (not serializer output): mixed quoting, decimal
  // and hex character references, CDATA, comments inside text runs.
  const std::string s =
      "<doc a=\"x&amp;y&lt;z\" b='q&quot;u&apos;o&#65;&#x42;'>"
      "t1&amp;<!-- c -->t2&#67;<![CDATA[<raw&>]]></doc>";
  auto dom = xml::Parse(s);
  ASSERT_TRUE(dom.ok()) << dom.status();

  xml::TokenReader r(s);
  auto t = r.Next();
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->type, xml::TokenType::kStartElement);
  xml::AttrList attrs;
  auto content = r.ReadAttrs(&attrs);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(attrs.Get("a"), (*dom)->AttrOr("a", "?"));
  EXPECT_EQ(attrs.Get("b"), (*dom)->AttrOr("b", "?"));
  EXPECT_EQ(attrs.Get("a"), "x&y<z");
  EXPECT_EQ(attrs.Get("b"), "q\"u'oAB");
  ASSERT_EQ(content->type, xml::TokenType::kText);
  EXPECT_EQ(content->value, (*dom)->InnerText());
  EXPECT_EQ(content->value, "t1&t2C<raw&>");
}

// S2: Parse(Serialize(t)) and the token reader agree on text/attrs
// containing the five specials and character references.
TEST(TokenReaderTest, EscapingRoundTripProperty) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed + 5000);
    auto doc = xml::Node::Element("d");
    doc->SetAttr("a", RandomSpicyText(&rng));
    doc->AddText(RandomSpicyText(&rng));
    const std::string s = xml::Serialize(*doc);
    // DOM round trip.
    auto back = xml::Parse(s);
    ASSERT_TRUE(back.ok()) << seed << ": " << back.status() << "\n" << s;
    EXPECT_TRUE((*back)->Equals(*doc)) << seed << "\n" << s;
    // Token round trip agrees with the DOM one.
    xml::TokenReader r(s);
    ASSERT_TRUE(r.Next().ok());
    xml::AttrList attrs;
    auto t = r.ReadAttrs(&attrs);
    ASSERT_TRUE(t.ok()) << seed << ": " << t.status();
    EXPECT_EQ(attrs.Get("a"), (*back)->AttrOr("a", "?")) << seed;
    ASSERT_EQ(t->type, xml::TokenType::kText) << seed;
    EXPECT_EQ(t->value, (*back)->InnerText()) << seed;
  }
}

TEST(TokenWriterTest, MatchesDomSerializerOnRandomTrees) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed + 900);
    auto item = RandomItem(&rng);
    const std::string dom_bytes = xml::Serialize(*item);
    std::string stream_bytes;
    xml::TokenWriter w(&stream_bytes);
    w.Write(*item);
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(stream_bytes, dom_bytes) << "seed " << seed;
    // Counting sink prices identically.
    xml::TokenWriter counter;
    counter.Write(*item);
    EXPECT_EQ(counter.size(), dom_bytes.size()) << "seed " << seed;
  }
}

// S1 (first half): the DOM size model matches the DOM serializer.
TEST(SerializedSizeTest, MatchesSerializeAcrossRandomTrees) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed + 31);
    auto item = RandomItem(&rng);
    EXPECT_EQ(xml::SerializedSize(*item), xml::Serialize(*item).size())
        << "seed " << seed;
  }
}

// --- plan codec equivalence ------------------------------------------------------

// S3 + S1 (second half): 1000 seeds; streaming and DOM paths agree
// byte-for-byte on encode, sizes match real bytes on both paths, decode
// agrees (checked by re-serializing both parses), and round trips are
// stable. Plans cover shared sub-DAGs, annotations, histograms, verbatim
// data sections, provenance, policy, and retained originals.
TEST(PlanCodecEquivalenceTest, RandomizedPlansAcrossBothPaths) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    const Plan plan = RandomPlan(seed);
    std::string stream_bytes, dom_bytes;
    size_t stream_size = 0, dom_size = 0;
    {
      ScopedCodecMode streaming(true);
      stream_bytes = algebra::SerializePlan(plan);
      stream_size = algebra::PlanWireSize(plan);
    }
    {
      ScopedCodecMode dom(false);
      dom_bytes = algebra::SerializePlan(plan);
      dom_size = algebra::PlanWireSize(plan);
    }
    ASSERT_EQ(stream_bytes, dom_bytes) << "seed " << seed;
    EXPECT_EQ(stream_size, stream_bytes.size()) << "seed " << seed;
    EXPECT_EQ(dom_size, dom_bytes.size()) << "seed " << seed;

    // Decode through both paths; re-serialize to compare full fidelity
    // (structure, sharing, annotations, items, provenance, policy).
    std::string stream_reserialized, dom_reserialized;
    {
      ScopedCodecMode streaming(true);
      auto parsed = algebra::ParsePlan(stream_bytes);
      ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << parsed.status();
      stream_reserialized = algebra::SerializePlan(*parsed);
    }
    {
      ScopedCodecMode dom(false);
      auto parsed = algebra::ParsePlan(dom_bytes);
      ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << parsed.status();
      dom_reserialized = algebra::SerializePlan(*parsed);
    }
    EXPECT_EQ(stream_reserialized, dom_reserialized) << "seed " << seed;
    // Round-trip stability: canonical bytes reproduce themselves.
    EXPECT_EQ(stream_reserialized, stream_bytes) << "seed " << seed;
  }
}

TEST(PlanCodecEquivalenceTest, StreamingDecodeBuildsZeroDomNodesWithoutItems) {
  ScopedCodecMode streaming(true);
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const Plan plan = RandomPlan(seed, /*with_items=*/false);
    const std::string bytes = algebra::SerializePlan(plan);
    const uint64_t before = xml::DomNodesBuilt();
    auto parsed = algebra::ParsePlan(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(xml::DomNodesBuilt() - before, 0u) << "seed " << seed;
  }
}

TEST(PlanCodecEquivalenceTest, StreamingDecodeMaterializesOnlyDataItems) {
  ScopedCodecMode streaming(true);
  // One data leaf with two items, each a single element with one text
  // child (price) — count exactly those nodes and nothing else.
  ItemSet items;
  for (int i = 0; i < 2; ++i) {
    auto n = xml::Node::Element("item");
    n->AddElementWithText("price", std::to_string(10 + i));
    items.push_back(Item(n.release()));
  }
  Plan plan(PlanNode::Display(
      "10.0.0.1:9020",
      PlanNode::Select(algebra::FieldLess("price", "100"),
                       PlanNode::XmlData(std::move(items)))));
  const std::string bytes = algebra::SerializePlan(plan);
  const uint64_t before = xml::DomNodesBuilt();
  auto parsed = algebra::ParsePlan(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Per item: <item>, <price>, text("10") = 3 nodes; 2 items = 6.
  EXPECT_EQ(xml::DomNodesBuilt() - before, 6u);
}

// S3 (malformed half): lexically broken inputs error on both paths, with
// byte offsets where the DOM parser reports them.
TEST(PlanCodecEquivalenceTest, MalformedInputsErrorOnBothPathsWithOffsets) {
  struct Case {
    const char* name;
    std::string input;
    bool offset_expected;
  };
  const std::vector<Case> cases = {
      {"mismatched-close",
       "<mqp><plan><data></plan></mqp>", true},
      {"unknown-entity",
       "<mqp><plan><data><i>&bogus;</i></data></plan></mqp>", true},
      {"bad-char-ref",
       "<mqp><plan><data><i>&#xFFFFFFFF;</i></data></plan></mqp>", true},
      {"unterminated-attr",
       "<mqp query-id=\"q1><plan><data/></plan></mqp>", true},
      {"unterminated-entity",
       "<mqp><plan><data><i>&amp</i></data></plan></mqp>", true},
      {"attr-missing-eq",
       "<mqp><plan><urn name "
       "\"x\"/></plan></mqp>", true},
      {"trailing-root",
       "<mqp><plan><data/></plan></mqp><oops/>", false},
      {"character-data-at-top",
       "stray<mqp><plan><data/></plan></mqp>", true},
      {"truncated",
       "<mqp><plan><select><field path=\"p\"/>", false},
      {"dangling-ref",
       "<mqp><plan><union><ref id=\"9\"/></union></plan></mqp>", false},
      {"bad-topn-n",
       "<mqp><plan><topn n=\"x\"><data/></topn></plan></mqp>", false},
      {"not-mqp-root",
       "<zap><plan><data/></plan></zap>", false},
      {"missing-plan", "<mqp></mqp>", false},
      {"empty-plan", "<mqp><plan>  </plan></mqp>", false},
  };
  for (const auto& c : cases) {
    Status stream_status = Status::OK(), dom_status = Status::OK();
    {
      ScopedCodecMode streaming(true);
      stream_status = algebra::ParsePlan(c.input).status();
    }
    {
      ScopedCodecMode dom(false);
      dom_status = algebra::ParsePlan(c.input).status();
    }
    EXPECT_FALSE(stream_status.ok()) << c.name;
    EXPECT_FALSE(dom_status.ok()) << c.name;
    if (c.offset_expected) {
      EXPECT_NE(stream_status.ToString().find("at byte"), std::string::npos)
          << c.name << ": " << stream_status.ToString();
      EXPECT_NE(dom_status.ToString().find("at byte"), std::string::npos)
          << c.name << ": " << dom_status.ToString();
    }
  }
}

// The streaming body decoders keep the DOM path's exactly-one-root
// guarantee: trailing content after the root element is rejected.
TEST(BodyCodecTest, TrailingContentAfterRootIsRejected) {
  auto ok_items = wire::DecodeItemBody("<r><i/></r>");
  ASSERT_TRUE(ok_items.ok());
  EXPECT_EQ(ok_items->size(), 1u);
  EXPECT_FALSE(wire::DecodeItemBody("<r><i/></r><r/>").ok());
  xml::AttrList attrs;
  EXPECT_TRUE(wire::DecodeAttrBody("<r a=\"1\"/>", &attrs).ok());
  EXPECT_FALSE(wire::DecodeAttrBody("<r a=\"1\"/><r/>", &attrs).ok());
  EXPECT_TRUE(catalog::DigestFromXml("<digest><v o=\"a\" s=\"1\"/></digest>")
                  .ok());
  EXPECT_FALSE(
      catalog::DigestFromXml(
          "<digest><v o=\"a\" s=\"1\"/></digest><digest/>")
          .ok());
  EXPECT_FALSE(
      catalog::CatalogDelta::FromXml("<delta></delta><delta/>").ok());
}

// '+'-prefixed numbers stay accepted (strtoll compatibility) but a '+'
// not followed by a digit stays invalid — "+-5" must not parse as -5.
TEST(NumberParsingTest, PlusSignHandling) {
  int64_t i = 0;
  EXPECT_TRUE(mqp::ParseInt64("+5", &i));
  EXPECT_EQ(i, 5);
  EXPECT_FALSE(mqp::ParseInt64("+-5", &i));
  EXPECT_FALSE(mqp::ParseInt64("+", &i));
  double d = 0;
  EXPECT_TRUE(mqp::ParseDouble("+1.5", &d));
  EXPECT_EQ(d, 1.5);
  EXPECT_TRUE(mqp::ParseDouble("+.5", &d));
  EXPECT_EQ(d, 0.5);
  EXPECT_FALSE(mqp::ParseDouble("+-1.5", &d));
}

TEST(PlanCodecEquivalenceTest, IndentedSerializationStillReparses) {
  // indent=true is the DOM debugging path; its output must stay
  // parseable by the streaming decoder (whitespace-insensitivity).
  const Plan plan = RandomPlan(7);
  const std::string pretty = algebra::SerializePlan(plan, /*indent=*/true);
  ScopedCodecMode streaming(true);
  auto parsed = algebra::ParsePlan(pretty);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(algebra::SerializePlan(*parsed), algebra::SerializePlan(plan));
}

}  // namespace
}  // namespace mqp
