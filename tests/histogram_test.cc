// FieldHistogram (§5.1 statistics annotations) and histogram-aware cost
// estimation.
#include <gtest/gtest.h>

#include "algebra/histogram.h"
#include "common/strings.h"
#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "common/rng.h"
#include "optimizer/cost.h"
#include "xml/parser.h"

namespace mqp::algebra {
namespace {

ItemSet UniformItems(size_t n, double lo, double hi, uint64_t seed) {
  Rng rng(seed);
  ItemSet out;
  for (size_t i = 0; i < n; ++i) {
    auto e = xml::Node::Element("i");
    const double v = lo + rng.NextDouble() * (hi - lo);
    e->AddElementWithText("price", mqp::FormatDouble(v));
    out.push_back(Item(e.release()));
  }
  return out;
}

TEST(HistogramTest, BuildBasics) {
  auto items = UniformItems(1000, 0, 100, 1);
  auto h = FieldHistogram::Build(items, "price", 10);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->field, "price");
  EXPECT_EQ(h->total, 1000u);
  EXPECT_EQ(h->counts.size(), 10u);
  uint64_t sum = 0;
  for (uint64_t c : h->counts) sum += c;
  EXPECT_EQ(sum, 1000u);
  EXPECT_GE(h->min, 0.0);
  EXPECT_LE(h->max, 100.0);
}

TEST(HistogramTest, TooFewValuesYieldsNothing) {
  ItemSet one = UniformItems(1, 0, 10, 2);
  EXPECT_FALSE(FieldHistogram::Build(one, "price").has_value());
  ItemSet none;
  EXPECT_FALSE(FieldHistogram::Build(none, "price").has_value());
  // Non-numeric field.
  auto e = xml::Node::Element("i");
  e->AddElementWithText("name", "abc");
  ItemSet named;
  named.push_back(Item(e->Clone().release()));
  named.push_back(Item(e.release()));
  EXPECT_FALSE(FieldHistogram::Build(named, "name").has_value());
}

TEST(HistogramTest, FractionBelowTracksUniformDistribution) {
  auto items = UniformItems(5000, 0, 100, 3);
  auto h = *FieldHistogram::Build(items, "price", 16);
  EXPECT_NEAR(h.FractionBelow(25), 0.25, 0.05);
  EXPECT_NEAR(h.FractionBelow(50), 0.50, 0.05);
  EXPECT_NEAR(h.FractionBelow(90), 0.90, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-5), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(1000), 1.0);
}

TEST(HistogramTest, SkewedDistributionCaptured) {
  // 90% of mass below 10, 10% spread to 100.
  Rng rng(4);
  ItemSet items;
  for (int i = 0; i < 2000; ++i) {
    auto e = xml::Node::Element("i");
    const double v = rng.NextBool(0.9) ? rng.NextDouble() * 10
                                       : 10 + rng.NextDouble() * 90;
    e->AddElementWithText("price", mqp::FormatDouble(v));
    items.push_back(Item(e.release()));
  }
  auto h = *FieldHistogram::Build(items, "price", 20);
  EXPECT_NEAR(h.FractionBelow(10), 0.9, 0.05);
  // A fixed-heuristic model would say 0.33 for this range predicate.
}

TEST(HistogramTest, XmlRoundTrip) {
  auto items = UniformItems(100, 5, 25, 5);
  auto h = *FieldHistogram::Build(items, "price", 6);
  auto node = h.ToXml();
  auto back = FieldHistogram::FromXml(*node);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, h);
}

TEST(HistogramTest, MalformedXmlRejected) {
  auto no_field = xml::Parse("<histogram min=\"0\" max=\"1\" total=\"2\"/>");
  EXPECT_FALSE(FieldHistogram::FromXml(**no_field).ok());
  auto no_buckets = xml::Parse(
      "<histogram field=\"p\" min=\"0\" max=\"1\" total=\"2\"/>");
  EXPECT_FALSE(FieldHistogram::FromXml(**no_buckets).ok());
  auto bad_bucket = xml::Parse(
      "<histogram field=\"p\" min=\"0\" max=\"1\" total=\"2\">"
      "<b c=\"x\"/></histogram>");
  EXPECT_FALSE(FieldHistogram::FromXml(**bad_bucket).ok());
}

TEST(HistogramTest, TravelsWithThePlan) {
  auto urn = PlanNode::UrnRef("urn:a:b");
  auto items = UniformItems(64, 0, 10, 6);
  urn->annotations().histograms.push_back(
      *FieldHistogram::Build(items, "price", 4));
  Plan plan(PlanNode::Select(FieldLess("price", "5"), urn));
  auto back = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(back.ok()) << back.status();
  const auto& hists = back->root()->child(0)->annotations().histograms;
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0], urn->annotations().histograms[0]);
}

TEST(HistogramTest, DataNodeItemsNotConfusedWithHistograms) {
  // A data node annotated with a histogram must not absorb it as an item.
  ItemSet items = UniformItems(4, 0, 10, 7);
  auto data = PlanNode::XmlData(items);
  data->annotations().histograms.push_back(
      *FieldHistogram::Build(items, "price", 2));
  Plan plan(data);
  auto back = ParsePlan(SerializePlan(plan));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->root()->items().size(), 4u);
  EXPECT_EQ(back->root()->annotations().histograms.size(), 1u);
}

TEST(HistogramCostTest, SelectivityBeatsHeuristic) {
  using optimizer::CostModel;
  CostModel cost;
  // Skewed data: nearly all prices < 10.
  Rng rng(8);
  ItemSet items;
  for (int i = 0; i < 1000; ++i) {
    auto e = xml::Node::Element("i");
    const double v = rng.NextBool(0.95) ? rng.NextDouble() * 10
                                        : 10 + rng.NextDouble() * 90;
    e->AddElementWithText("price", mqp::FormatDouble(v));
    items.push_back(Item(e.release()));
  }
  auto urn = PlanNode::UrnRef("urn:skewed:data");
  urn->annotations().cardinality = 1000;
  auto select = PlanNode::Select(FieldLess("price", "10"), urn);

  const double heuristic_rows = cost.Estimate(*select).rows;
  EXPECT_NEAR(heuristic_rows, 330, 5);  // fixed 0.33 range selectivity

  urn->annotations().histograms.push_back(
      *FieldHistogram::Build(items, "price", 16));
  const double informed_rows = cost.Estimate(*select).rows;
  // ~95% of rows actually qualify. Equi-width buckets smear the boundary
  // (the cut falls inside a skewed bucket), so accept anything clearly in
  // the right regime — still far above the fixed heuristic's 330.
  EXPECT_GT(informed_rows, 700);
  EXPECT_LE(informed_rows, 1000);
  EXPECT_GT(informed_rows, 2 * heuristic_rows);
}

TEST(HistogramCostTest, EqualityAndNegationFromHistogram) {
  using optimizer::CostModel;
  CostModel cost;
  auto items = UniformItems(1000, 0, 100, 9);
  auto urn = PlanNode::UrnRef("urn:u:d");
  urn->annotations().cardinality = 1000;
  urn->annotations().histograms.push_back(
      *FieldHistogram::Build(items, "price", 10));
  auto eq = PlanNode::Select(FieldEquals("price", "50"), urn);
  auto ge = PlanNode::Select(
      Expr::Compare(CompareOp::kGe, Expr::Field("price"),
                    Expr::Literal("75")),
      urn);
  // Equality on a dense uniform field is rare; >= 75 is about a quarter.
  EXPECT_LT(cost.Estimate(*eq).rows, 120);
  EXPECT_NEAR(cost.Estimate(*ge).rows, 250, 60);
}

TEST(HistogramCostTest, ReversedOperandsNormalized) {
  using optimizer::CostModel;
  CostModel cost;
  auto items = UniformItems(1000, 0, 100, 10);
  auto urn = PlanNode::UrnRef("urn:u:d");
  urn->annotations().cardinality = 1000;
  urn->annotations().histograms.push_back(
      *FieldHistogram::Build(items, "price", 10));
  // "25 > price" === "price < 25".
  auto reversed = PlanNode::Select(
      Expr::Compare(CompareOp::kGt, Expr::Literal("25"),
                    Expr::Field("price")),
      urn);
  EXPECT_NEAR(cost.Estimate(*reversed).rows, 250, 60);
}

}  // namespace
}  // namespace mqp::algebra
