// Failure injection and concurrency: the system must degrade gracefully,
// never crash, and keep independent queries correlated correctly.
#include <gtest/gtest.h>

#include "net/simulator.h"
#include "common/strings.h"
#include "peer/peer.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using peer::Peer;
using peer::QueryOutcome;
using workload::BuildGarageSaleNetwork;
using workload::GarageSaleGenerator;
using workload::GarageSaleNetworkParams;
using workload::MakeAreaQueryPlan;

TEST(RobustnessTest, ManyConcurrentQueriesCorrelateById) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 14;
  params.items_per_seller = 6;
  params.seed = 77;
  auto net = BuildGarageSaleNetwork(&sim, params);

  // Submit one query per state before running the simulator at all;
  // results must map back to the right query.
  const char* areas[] = {"(USA.OR,*)", "(USA.WA,*)", "(USA.CA,*)",
                         "(France,*)", "(USA,Furniture)"};
  std::map<std::string, QueryOutcome> outcomes;
  std::map<std::string, std::string> area_of_query;
  for (const char* a : areas) {
    auto area = *ns::InterestArea::Parse(a);
    std::string qid = net.client->SubmitQuery(
        MakeAreaQueryPlan(area), [&outcomes](const QueryOutcome& o) {
          outcomes[o.query_id] = o;
        });
    area_of_query[qid] = a;
  }
  sim.Run();
  ASSERT_EQ(outcomes.size(), 5u);
  for (const auto& [qid, outcome] : outcomes) {
    ASSERT_TRUE(outcome.complete) << qid;
    auto area = *ns::InterestArea::Parse(area_of_query[qid]);
    EXPECT_EQ(outcome.items.size(),
              GarageSaleGenerator::CountInArea(net.all_items, area))
        << qid << " " << area_of_query[qid];
    // Every returned item really lies in the queried area.
    for (const auto& item : outcome.items) {
      EXPECT_TRUE(GarageSaleGenerator::ItemInArea(*item, area));
    }
  }
}

TEST(RobustnessTest, FailedMetaServerStrandsQueryWithoutCrash) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.seed = 78;
  auto net = BuildGarageSaleNetwork(&sim, params);
  sim.Fail(net.top_meta->id());
  bool done = false;
  QueryOutcome first;
  net.client->SubmitQuery(
      MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
      [&](const QueryOutcome& o) {
        first = o;
        done = true;
      });
  sim.Run();
  // The sole bootstrap is down, so no progress is possible — but the
  // reliability layer (DESIGN.md §9) still finishes the query: retries
  // exhaust, the outcome reports timed_out with complete=false, and the
  // pending entry is reaped rather than leaked.
  ASSERT_TRUE(done);
  EXPECT_FALSE(first.complete);
  EXPECT_TRUE(first.timed_out);
  EXPECT_GE(first.attempts, 2u);
  EXPECT_EQ(net.client->pending_queries(), 0u);
  // After recovery the same client succeeds (the suspicion list never
  // vetoes a sole candidate, so the recovered bootstrap is usable at
  // once).
  done = false;
  sim.Recover(net.top_meta->id());
  QueryOutcome outcome;
  net.client->SubmitQuery(
      MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
      [&](const QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
}

TEST(RobustnessTest, FailureAtEveryHopNeverCrashes) {
  // Deterministically fail each peer id in turn while the same query runs:
  // the system must never crash and must either answer or stay silent.
  for (net::PeerId victim = 0; victim < 12; ++victim) {
    net::Simulator sim;
    GarageSaleNetworkParams params;
    params.num_sellers = 6;
    params.items_per_seller = 3;
    params.seed = 79;
    auto net = BuildGarageSaleNetwork(&sim, params);
    if (victim >= sim.size()) break;
    if (victim == net.client->id()) continue;
    sim.Fail(victim);
    bool done = false;
    QueryOutcome outcome;
    net.client->SubmitQuery(
        MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)")),
        [&](const QueryOutcome& o) {
          outcome = o;
          done = true;
        });
    sim.Run();
    if (done && outcome.complete) {
      // If an answer arrived as complete, it must be internally
      // consistent: only USA items.
      for (const auto& item : outcome.items) {
        EXPECT_TRUE(StartsWith(item->ChildText("location"), "USA"));
      }
    }
  }
}

TEST(RobustnessTest, MalformedMessagesIgnored) {
  net::Simulator sim;
  peer::PeerOptions o;
  o.roles.base = true;
  o.roles.index = true;
  Peer p(&sim, o);
  for (const char* kind :
       {peer::kMqpKind, peer::kResultKind, peer::kRegisterKind,
        peer::kCategoryQueryKind, peer::kFetchKind, peer::kSubqueryKind,
        peer::kFetchReplyKind}) {
    sim.Send({net::kNoPeer, p.id(), kind, "<not-even-xml", 0});
    sim.Send({net::kNoPeer, p.id(), kind, "<wrong-root/>", 0});
    sim.Send({net::kNoPeer, p.id(), kind, "", 0});
  }
  sim.Run();  // no crash
  EXPECT_EQ(p.counters().plans_forwarded, 0u);
}

TEST(RobustnessTest, RepeatedQueriesStayDeterministic) {
  // The same seed must give byte-identical traffic counts across runs.
  auto run_once = [] {
    net::Simulator sim;
    GarageSaleNetworkParams params;
    params.num_sellers = 8;
    params.seed = 81;
    auto net = BuildGarageSaleNetwork(&sim, params);
    bool done = false;
    net.client->SubmitQuery(
        MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA.OR,*)")),
        [&](const QueryOutcome&) { done = true; });
    sim.Run();
    EXPECT_TRUE(done);
    return std::make_pair(sim.stats().messages, sim.stats().bytes);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(RobustnessTest, DeepPlanSurvivesWire) {
  // A deeply nested plan round-trips and evaluates without stack issues.
  using algebra::PlanNode;
  algebra::ItemSet items;
  auto e = xml::Node::Element("i");
  e->AddElementWithText("v", "1");
  items.push_back(algebra::Item(e.release()));
  algebra::PlanNodePtr node = PlanNode::XmlData(items);
  for (int i = 0; i < 200; ++i) {
    node = PlanNode::Select(algebra::FieldGreater("v", "0"), node);
  }
  algebra::Plan plan(node);
  auto back = algebra::ParsePlan(algebra::SerializePlan(plan));
  ASSERT_TRUE(back.ok());
  auto result = engine::Evaluate(*back->root());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

}  // namespace
}  // namespace mqp
