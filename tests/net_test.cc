#include <gtest/gtest.h>

#include "net/simulator.h"

namespace mqp::net {
namespace {

class Recorder : public PeerNode {
 public:
  explicit Recorder(Simulator* sim) : sim_(sim) { id_ = sim->Register(this); }
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
    times.push_back(sim_->now());
  }
  PeerId id() const { return id_; }
  std::vector<Message> received;
  std::vector<double> times;

 private:
  Simulator* sim_;
  PeerId id_;
};

TEST(SimulatorTest, AddressRoundTrip) {
  Simulator sim;
  Recorder a(&sim), b(&sim);
  EXPECT_EQ(Simulator::AddressOf(a.id()), "10.0.0.0:9020");
  auto found = sim.Lookup("10.0.0.1:9020");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, b.id());
  EXPECT_FALSE(sim.Lookup("10.0.0.99:9020").ok());
  EXPECT_FALSE(sim.Lookup("garbage").ok());
  EXPECT_FALSE(sim.Lookup("10.0.0.1").ok());
}

TEST(SimulatorTest, DeliveryLatencyGrowsWithSize) {
  Simulator sim;
  Recorder a(&sim), b(&sim);
  sim.Send({a.id(), b.id(), "k", std::string(1000, 'x'), 0});
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  const double t_small = b.times[0];
  sim.Send({a.id(), b.id(), "k", std::string(1000000, 'x'), 0});
  sim.Run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_GT(b.times[1] - t_small, 0.5);  // ~0.8s at 1.25 MB/s
}

TEST(SimulatorTest, FifoForEqualTimes) {
  Simulator sim;
  Recorder a(&sim), b(&sim);
  for (int i = 0; i < 5; ++i) {
    sim.Send({a.id(), b.id(), "k", std::to_string(i), 1});
  }
  sim.Run();
  ASSERT_EQ(b.received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.received[static_cast<size_t>(i)].body(), std::to_string(i));
  }
}

TEST(SimulatorTest, StatsAccumulateByKind) {
  Simulator sim;
  Recorder a(&sim), b(&sim);
  sim.Send({a.id(), b.id(), "mqp", "12345", 0});
  sim.Send({a.id(), b.id(), "result", "123", 0});
  sim.Send({a.id(), b.id(), "mqp", "1", 0});
  sim.Run();
  EXPECT_EQ(sim.stats().messages, 3u);
  EXPECT_EQ(sim.stats().bytes, 9u);
  EXPECT_EQ(sim.stats().messages_by_kind.at("mqp"), 2u);
  EXPECT_EQ(sim.stats().bytes_by_kind.at("result"), 3u);
  sim.stats().Clear();
  EXPECT_EQ(sim.stats().messages, 0u);
}

TEST(SimulatorTest, FailedPeerDropsMessages) {
  Simulator sim;
  Recorder a(&sim), b(&sim);
  sim.Fail(b.id());
  sim.Send({a.id(), b.id(), "k", "x", 0});
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.stats().messages, 1u);  // counted as sent
  sim.Recover(b.id());
  sim.Send({a.id(), b.id(), "k", "x", 0});
  sim.Run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimulatorTest, FailedSenderOriginatesNothing) {
  // A down peer must not leak traffic (e.g. a gossip tick scheduled
  // before the failure firing after it).
  Simulator sim;
  Recorder a(&sim), b(&sim);
  sim.Fail(a.id());
  sim.Send({a.id(), b.id(), "k", "x", 0});
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.stats().messages, 1u);  // counted as sent, like to-failed
  EXPECT_EQ(sim.stats().drops_from_failed, 1u);
  EXPECT_EQ(sim.stats().drops_to_failed, 0u);
  sim.Recover(a.id());
  sim.Send({a.id(), b.id(), "k", "x", 0});
  sim.Run();
  EXPECT_EQ(b.received.size(), 1u);
  // External probes (from == kNoPeer) are unaffected by the sender check.
  sim.Send({kNoPeer, b.id(), "k", "x", 0});
  sim.Run();
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(SimulatorTest, FailureInTransitDropsDelivery) {
  Simulator sim;
  Recorder a(&sim), b(&sim);
  sim.Send({a.id(), b.id(), "k", "x", 0});
  sim.Fail(b.id());  // fails before the event fires
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  // The in-transit skip is accounted, not silent (parity with the
  // threaded runtime's in-flight drop counting — DESIGN.md §9).
  EXPECT_EQ(sim.stats().drops_to_failed, 1u);
}

TEST(SimulatorTest, ScheduleRunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, RunStopsAtMaxTime) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(100.0, [&] { ++fired; });
  sim.Run(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Idle());
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, LinkOverrideChangesLatency) {
  Simulator sim;
  Recorder a(&sim), b(&sim), c(&sim);
  LinkParams slow;
  slow.latency_seconds = 5.0;
  slow.bytes_per_second = 1e9;
  sim.SetLinkOverride(a.id(), c.id(), slow);
  sim.Send({a.id(), b.id(), "k", "x", 0});
  sim.Send({a.id(), c.id(), "k", "x", 0});
  sim.Run();
  ASSERT_EQ(b.times.size(), 1u);
  ASSERT_EQ(c.times.size(), 1u);
  EXPECT_LT(b.times[0], 1.0);
  EXPECT_GT(c.times[0], 4.9);
}

TEST(SimulatorTest, EventsCascadeFromHandlers) {
  Simulator sim;
  // A handler that forwards once.
  class Forwarder : public PeerNode {
   public:
    Forwarder(Simulator* sim, PeerId* next) : sim_(sim), next_(next) {
      id_ = sim->Register(this);
    }
    void HandleMessage(const Message& msg) override {
      ++hops;
      if (*next_ != kNoPeer) {
        sim_->Send({id_, *next_, msg.kind, msg.payload, 0});
      }
    }
    PeerId id_;
    int hops = 0;

   private:
    Simulator* sim_;
    PeerId* next_;
  };
  PeerId second_target = kNoPeer;
  PeerId none = kNoPeer;
  Forwarder f1(&sim, &second_target);
  Forwarder f2(&sim, &none);
  second_target = f2.id_;
  sim.Send({kNoPeer, f1.id_, "k", "x", 0});
  sim.Run();
  EXPECT_EQ(f1.hops, 1);
  EXPECT_EQ(f2.hops, 1);
}

}  // namespace
}  // namespace mqp::net
