// Overload-protection tests (DESIGN.md §11): client-side admission
// control, priority-aware shedding, per-query evaluation budgets,
// cooperative cancellation — and the determinism sweep asserting that
// every shed/abort/cancel decision replays bit-identically per seed on
// the simulator and the threaded runtime.
//
// Seed counts default to a quick smoke sweep; CI's runtime job sets
// MQP_EQUIV_SEEDS=1000 for the full suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "engine/local_store.h"
#include "engine/operator.h"
#include "net/simulator.h"
#include "peer/peer.h"
#include "runtime/threaded_runtime.h"
#include "wire/envelope.h"
#include "workload/flash_crowd.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using algebra::ItemSet;
using algebra::Plan;
using algebra::PlanNode;

size_t EquivSeeds(size_t fallback) {
  if (const char* env = std::getenv("MQP_EQUIV_SEEDS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

ItemSet SomeItems(size_t n, uint64_t seed) {
  workload::GarageSaleGenerator gen(seed);
  auto sellers = gen.MakeSellers(1);
  return gen.MakeItems(sellers[0], n);
}

// --- per-query evaluation budgets ---------------------------------------------

// A row budget smaller than the collection aborts the scan mid-stream
// with kTimeout and counts exactly one budget abort per scope.
TEST(EvalBudget, RowBudgetAbortsLargeScan) {
  engine::internal::MutableStats() = engine::EngineStats{};
  engine::LocalStore store;
  ItemSet big = SomeItems(500, 11);
  const auto plan = PlanNode::XmlData(big);
  {
    const engine::ScopedEvalBudget budget(engine::EvalLimits{.max_rows = 64});
    auto r = engine::Evaluate(*plan, &store);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  }
  EXPECT_EQ(engine::Stats().budget_aborts, 1u);
  // Without a budget the same scan sails through.
  auto r = engine::Evaluate(*plan, &store);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 500u);
  EXPECT_EQ(engine::Stats().budget_aborts, 1u);
}

// Nested scopes: the innermost budget wins while it is active.
TEST(EvalBudget, InnermostScopeWins) {
  engine::internal::MutableStats() = engine::EngineStats{};
  engine::LocalStore store;
  ItemSet big = SomeItems(200, 12);
  const auto plan = PlanNode::XmlData(big);
  const engine::ScopedEvalBudget outer(
      engine::EvalLimits{.max_rows = 100000});
  {
    const engine::ScopedEvalBudget inner(engine::EvalLimits{.max_rows = 8});
    auto r = engine::Evaluate(*plan, &store);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  }
  auto r = engine::Evaluate(*plan, &store);
  EXPECT_TRUE(r.ok());  // back on the generous outer budget
}

/// A slow fleet (1s of virtual service per hop) with the given deadline
/// and overload template; returns the single query's outcome.
peer::QueryOutcome RunSlowWalkQuery(double deadline_seconds,
                                    double budget_rows_per_second,
                                    size_t items_per_seller,
                                    net::NetStats* stats_out = nullptr) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 8;
  params.items_per_seller = items_per_seller;
  params.seed = 21;
  params.client_template.reliability.enabled = true;
  params.client_template.reliability.query_deadline_seconds =
      deadline_seconds;
  params.client_template.reliability.max_retries = 0;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);

  peer::OverloadOptions ov;
  ov.service_rate_qps = 1;  // one virtual second per mqp hop
  ov.budget_rows_per_second = budget_rows_per_second;
  ov.min_budget_rows = 16;
  std::vector<peer::Peer*> all{net.client, net.top_meta};
  for (auto* p : net.index_servers) all.push_back(p);
  for (auto* p : net.sellers) all.push_back(p);
  for (auto* p : all) p->mutable_options().overload = ov;

  peer::QueryOutcome out;
  bool returned = false;
  const auto area = *ns::InterestArea::Parse("(USA,*)");
  net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                          [&](const peer::QueryOutcome& o) {
                            out = o;
                            returned = true;
                          });
  sim.Run();
  EXPECT_TRUE(returned);
  if (stats_out != nullptr) *stats_out = sim.stats();
  EXPECT_EQ(net.client->pending_queries(), 0u);
  return out;
}

// Satellite regression: a deadline expiring mid-walk of a slow fleet
// still yields a *timely* partial — the callback fires at the deadline
// (not when the backlog would have drained) and carries the items the
// already-visited sellers answered.
TEST(EvalBudget, DeadlineMidWalkYieldsTimelyPartial) {
  // (USA,*) visits meta + index servers + all 8 sellers at 1s per hop —
  // a complete answer needs >10s of service; the deadline cuts it off
  // after a handful of sellers evaluated.
  const double deadline = 6.5;
  peer::QueryOutcome out = RunSlowWalkQuery(deadline,
                                            /*budget_rows_per_second=*/0,
                                            /*items_per_seller=*/4);
  EXPECT_TRUE(out.timed_out);
  EXPECT_FALSE(out.complete);
  EXPECT_FALSE(out.items.empty());  // degradation, not silence
  const double latency = out.completed_at - out.submitted_at;
  EXPECT_GE(latency, deadline - 0.5);
  EXPECT_LE(latency, deadline + 2.0);  // timely: deadline + one reap hop
}

// With a row budget scaled to the remaining deadline, a large collection
// aborts mid-evaluation (budget_aborts counted into NetStats) and the
// callback still fires on time.
TEST(EvalBudget, BudgetAbortsLargeCollectionMidEvaluation) {
  const double deadline = 6.5;
  net::NetStats stats;
  peer::QueryOutcome out = RunSlowWalkQuery(deadline,
                                            /*budget_rows_per_second=*/20,
                                            /*items_per_seller=*/300, &stats);
  EXPECT_TRUE(out.timed_out);
  EXPECT_GE(stats.budget_aborts, 1u);
  const double latency = out.completed_at - out.submitted_at;
  EXPECT_LE(latency, deadline + 2.0);
}

// --- client-side admission control --------------------------------------------

// Past the pending budget, a best-effort query is refused synchronously
// (outcome.shed, nothing on the wire) while a high-priority one rides
// the priority ceiling in.
TEST(Admission, ClientShedsBestEffortPastBudgetButAdmitsHighPriority) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 2;
  params.items_per_seller = 2;
  params.seed = 31;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  net.client->mutable_options().overload.max_pending_queries = 1;
  // No reliability machinery: forwarded queries pend until answered.
  net.client->mutable_options().reliability.enabled = false;
  // The first query parks in pending_ forever: its route dead-ends.
  sim.Fail(net.top_meta->id());

  const auto area = *ns::InterestArea::Parse("(USA,*)");
  size_t returned = 0;
  net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                          [&](const peer::QueryOutcome&) { ++returned; });
  EXPECT_EQ(net.client->pending_queries(), 1u);

  bool second_shed = false;
  net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                          [&](const peer::QueryOutcome& o) {
                            second_shed = o.shed;
                            ++returned;
                          });
  EXPECT_TRUE(second_shed);  // refused synchronously at submission
  EXPECT_EQ(net.client->counters().queries_shed, 1u);
  EXPECT_EQ(sim.stats().queries_shed, 1u);

  Plan hp = workload::MakeAreaQueryPlan(area);
  hp.policy().priority = 1;
  bool third_shed = false;
  net.client->SubmitQuery(std::move(hp), [&](const peer::QueryOutcome& o) {
    third_shed = o.shed;
    ++returned;
  });
  EXPECT_FALSE(third_shed);  // ceiling = 4x the best-effort budget
  EXPECT_EQ(net.client->pending_queries(), 2u);
  EXPECT_EQ(sim.stats().queries_shed, 1u);
  EXPECT_EQ(returned, 1u);  // only the shed callback has fired so far
}

// Ablated (enabled=false), the same pressure admits everything.
TEST(Admission, AblationDisablesClientShedding) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 2;
  params.items_per_seller = 2;
  params.seed = 31;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  net.client->mutable_options().overload.max_pending_queries = 1;
  net.client->mutable_options().overload.enabled = false;
  net.client->mutable_options().reliability.enabled = false;
  sim.Fail(net.top_meta->id());

  const auto area = *ns::InterestArea::Parse("(USA,*)");
  for (int i = 0; i < 3; ++i) {
    net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                            [](const peer::QueryOutcome&) {});
  }
  EXPECT_EQ(net.client->pending_queries(), 3u);
  EXPECT_EQ(sim.stats().queries_shed, 0u);
}

// --- remote shedding under a flash crowd --------------------------------------

workload::FlashCrowdParams MiniCrowd(uint64_t seed) {
  workload::FlashCrowdParams p;
  p.seed = seed;
  p.num_sellers = 6;
  p.items_per_seller = 3;
  // Deliberately non-round rates: no two events of distinct queries land
  // on the same virtual instant, so the per-peer arrival order — which
  // the shed decisions depend on — is the same on every backend.
  p.service_rate_qps = 11.7;
  p.capacity_qps = 7.3;
  p.load_multiplier = 3.4;
  p.duration_seconds = 8;
  p.drain_tail_seconds = 8;
  p.high_priority_fraction = 0.1;
  p.query_deadline_seconds = 2.9;
  p.overload.shed_delay_seconds = 0.45;
  p.overload.max_pending_queries = 24;
  p.overload.budget_rows_per_second = 900;
  return p;
}

// Under a 3.4x crowd the fleet sheds best-effort queries, fans out
// cancels for the timed-out remainder, keeps the high-priority slice
// whole — and leaks nothing.
TEST(FlashCrowd, ShedsBestEffortKeepsHighPriorityNoLeaks) {
  net::Simulator sim;
  workload::FlashCrowdScenario scenario(&sim, MiniCrowd(77));
  const auto& st = scenario.Run();
  EXPECT_GT(st.submitted, 0u);
  EXPECT_GT(st.queries_shed, 0u);   // RED shedding engaged
  EXPECT_GT(st.cancels_sent, 0u);   // give-ups fanned out cancels
  EXPECT_GT(st.complete, 0u);       // admitted queries still finish
  EXPECT_EQ(st.hp_complete, st.hp_submitted);  // priority slice intact
  EXPECT_EQ(st.leaked_pending, 0u);
  EXPECT_EQ(st.leaked_sessions, 0u);
}

// The ablated fleet under the same crowd sheds nothing and times out
// strictly more than the protected one completes around.
TEST(FlashCrowd, AblationShedsNothingAndCollapses) {
  workload::FlashCrowdParams prot = MiniCrowd(78);
  workload::FlashCrowdParams abl = MiniCrowd(78);
  abl.protection = false;

  net::Simulator sim_p;
  workload::FlashCrowdScenario sp(&sim_p, prot);
  const auto stp = sp.Run();

  net::Simulator sim_a;
  workload::FlashCrowdScenario sa(&sim_a, abl);
  const auto sta = sa.Run();

  EXPECT_EQ(sta.queries_shed, 0u);
  EXPECT_EQ(sta.cancels_sent, 0u);
  EXPECT_GT(stp.complete, sta.complete);
  EXPECT_EQ(sta.leaked_pending, 0u);  // deadlines still reap everything
  EXPECT_EQ(sta.leaked_sessions, 0u);
}

// --- cooperative cancellation -------------------------------------------------

/// Finds the peer currently holding a top-k session (the merge
/// coordinator), or null.
peer::Peer* SessionHolder(workload::GarageSaleNetwork* net) {
  std::vector<peer::Peer*> all{net->client, net->top_meta};
  for (auto* p : net->index_servers) all.push_back(p);
  for (auto* p : net->sellers) all.push_back(p);
  for (auto* p : all) {
    if (p->topk_sessions() > 0) return p;
  }
  return nullptr;
}

// A cancel arriving mid-session reaps the coordinator's merge session; a
// duplicated cancel (FaultInjector-style) is idempotent; the session's
// late fetch replies are recognized noise, not unmatched replies.
TEST(Cancel, WireCancelReapsSessionAndDuplicateIsIdempotent) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 5;
  params.items_per_seller = 6;
  params.seed = 41;
  params.client_template.reliability.enabled = true;
  params.client_template.reliability.query_deadline_seconds = 30;
  params.client_template.reliability.max_retries = 0;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);
  // Slow links keep the session open for seconds: fetch replies take a
  // full RTT the injected cancel can beat.
  sim.set_default_link({/*latency_seconds=*/1.0,
                        /*bytes_per_second=*/1.25e8});

  const auto area = *ns::InterestArea::Parse("(USA,*)");
  peer::QueryOutcome out;
  bool returned = false;
  const std::string qid = net.client->SubmitQuery(
      workload::MakeTopKQueryPlan(area, "price", true, 3),
      [&](const peer::QueryOutcome& o) {
        out = o;
        returned = true;
      });

  // Probe the fleet until the merge session opens, then fire the cancel
  // twice (a duplicated delivery) at the coordinator.
  peer::Peer* coordinator = nullptr;
  for (int tick = 1; tick <= 40; ++tick) {
    sim.Schedule(0.25 * tick, [&] {
      if (coordinator != nullptr) return;
      peer::Peer* holder = SessionHolder(&net);
      if (holder == nullptr) return;
      coordinator = holder;
      for (int dup = 0; dup < 2; ++dup) {
        wire::Send(&sim, net.client->id(), holder->id(),
                   {wire::kCancelKind, qid, 0, net::Payload()});
      }
    });
  }
  sim.Run();

  ASSERT_NE(coordinator, nullptr) << "no top-k session ever opened";
  EXPECT_EQ(coordinator->topk_sessions(), 0u);
  EXPECT_EQ(sim.stats().cancelled_sessions_reaped, 1u);  // dup suppressed
  EXPECT_EQ(sim.stats().unmatched_replies, 0u);  // late replies were noise
  // The cancelled query never completes; the client deadline degrades it.
  EXPECT_TRUE(returned);
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(net.client->pending_queries(), 0u);
  EXPECT_EQ(SessionHolder(&net), nullptr);
}

// A cancel for an already-finished query is a no-op, and a cancelled
// query id keeps dropping late/duplicated mqp plans afterwards.
TEST(Cancel, LateCancelIsNoOpAndCancelledIdDropsLatePlans) {
  net::Simulator sim;
  workload::GarageSaleNetworkParams params;
  params.num_sellers = 3;
  params.items_per_seller = 2;
  params.seed = 51;
  auto net = workload::BuildGarageSaleNetwork(&sim, params);

  const auto area = *ns::InterestArea::Parse("(USA,*)");
  peer::QueryOutcome out;
  const std::string qid = net.client->SubmitQuery(
      workload::MakeAreaQueryPlan(area),
      [&](const peer::QueryOutcome& o) { out = o; });
  sim.Run();
  ASSERT_TRUE(out.complete);

  // Late cancel for the completed query: nothing to reap, no crash.
  peer::Peer* seller = net.sellers[0];
  wire::Send(&sim, net.client->id(), seller->id(),
             {wire::kCancelKind, qid, 0, net::Payload()});
  sim.Run();
  EXPECT_EQ(sim.stats().cancelled_sessions_reaped, 0u);

  // The seller now drops any late plan replayed under that query id —
  // and keeps dropping duplicates.
  const uint64_t evaluated_before = seller->counters().subplans_evaluated;
  for (int dup = 0; dup < 2; ++dup) {
    Plan late = workload::MakeAreaQueryPlan(area);
    late.set_query_id(qid);
    wire::Send(&sim, net.client->id(), seller->id(),
               {peer::kMqpKind, qid, 0,
                net::MakePayload(algebra::SerializePlan(late))});
  }
  sim.Run();
  EXPECT_EQ(sim.stats().cancelled_sessions_reaped, 2u);  // counted drops
  EXPECT_EQ(seller->counters().subplans_evaluated, evaluated_before);
  EXPECT_EQ(net.client->pending_queries(), 0u);
  EXPECT_EQ(SessionHolder(&net), nullptr);
}

// --- cross-backend determinism ------------------------------------------------

struct CrowdFp {
  std::string trace;
  uint64_t shed = 0;
  uint64_t aborts = 0;
  uint64_t cancels = 0;
  uint64_t reaped = 0;
  bool operator==(const CrowdFp&) const = default;
};

CrowdFp RunCrowd(net::Transport* transport, uint64_t seed) {
  workload::FlashCrowdScenario scenario(transport, MiniCrowd(seed));
  const auto& st = scenario.Run();
  EXPECT_EQ(st.leaked_pending, 0u) << "seed " << seed;
  EXPECT_EQ(st.leaked_sessions, 0u) << "seed " << seed;
  return {st.decision_trace, st.queries_shed, st.budget_aborts,
          st.cancels_sent, st.cancelled_sessions_reaped};
}

// The acceptance sweep: per seed, the shed/abort/cancel decision trace
// and counters are bit-identical across a simulator re-run (pure
// determinism) and the threaded runtime at several worker counts
// (backend equivalence). The simulator runs with zero-latency links to
// match the threaded runtime's deliver-at-send-time model — decision
// times must coincide for decisions to coincide.
TEST(OverloadEquivalence, ShedAbortCancelDecisionsMatchManySeeds) {
  const size_t seeds = EquivSeeds(40);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    const net::LinkParams zero_link{
        /*latency_seconds=*/0.0,
        /*bytes_per_second=*/std::numeric_limits<double>::infinity()};
    net::Simulator sim;
    sim.set_default_link(zero_link);
    const CrowdFp reference = RunCrowd(&sim, seed);

    net::Simulator sim2;
    sim2.set_default_link(zero_link);
    const CrowdFp replay = RunCrowd(&sim2, seed);
    ASSERT_EQ(reference, replay) << "simulator replay diverged, seed "
                                 << seed;

    for (const size_t threads : {size_t{1}, size_t{4}}) {
      runtime::ThreadedRuntime rt(
          runtime::RuntimeOptions{.num_threads = threads});
      const CrowdFp got = RunCrowd(&rt, seed);
      rt.Shutdown();
      ASSERT_EQ(reference, got)
          << "seed " << seed << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace mqp
