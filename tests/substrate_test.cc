// Tests for the million-peer substrate (DESIGN.md §7): calendar-queue /
// binary-heap scheduler equivalence, event-pool recycling, interned kind
// counters, cached addresses, and the super-peer topology builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/simulator.h"
#include "peer/peer.h"
#include "workload/churn.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using net::Message;
using net::PeerId;
using net::Simulator;

// --- scheduler equivalence ---------------------------------------------------

/// One observed delivery: everything a handler can see that could expose
/// an ordering difference between the two schedulers.
struct Delivery {
  double now;
  PeerId to;
  PeerId from;
  size_t size;
  bool operator==(const Delivery&) const = default;
};

/// A node whose reaction is a pure function of the message it receives:
/// forwards while the message has budget (125 bytes burn per hop), and
/// schedules an equal-time callback for sizes on the 625 grid — nested
/// sends, ties and schedule-at-now all exercised from inside handlers.
class EchoNode : public net::PeerNode {
 public:
  EchoNode(Simulator* sim, std::vector<Delivery>* log)
      : sim_(sim), log_(log) {
    id_ = sim->Register(this);
  }

  void HandleMessage(const Message& msg) override {
    log_->push_back({sim_->now(), msg.to, msg.from, msg.size_bytes});
    if (msg.size_bytes >= 250) {
      Message m;
      m.from = msg.to;
      m.to = static_cast<PeerId>((msg.to + msg.size_bytes / 125) %
                                 sim_->size());
      m.kind = "ping";
      m.size_bytes = msg.size_bytes - 125;
      sim_->Send(std::move(m));
    }
    if (msg.size_bytes % 625 == 0 && msg.size_bytes > 0) {
      const PeerId self = id_;
      Simulator* sim = sim_;
      sim_->Schedule(sim_->now(), [sim, self] {
        Message m;
        m.from = self;
        m.to = static_cast<PeerId>((self + 1) % sim->size());
        m.kind = "ping";
        m.size_bytes = 125;
        sim->Send(std::move(m));
      });
    }
  }

 private:
  Simulator* sim_;
  std::vector<Delivery>* log_;
  PeerId id_ = net::kNoPeer;
};

struct TraceResult {
  std::vector<Delivery> log;
  double final_now = 0;
  uint64_t messages = 0, bytes = 0, events = 0;
  uint64_t drops_from = 0, drops_to = 0;
};

/// Runs one seeded random scenario — burst sends on a 125-byte size grid
/// (dense time ties), churn via scheduled Fail/Recover, a mid-stream
/// Run(max_time) boundary, a second burst — under the chosen scheduler.
TraceResult RunTrace(uint64_t seed, bool calendar) {
  Rng rng(seed);
  Simulator sim;
  sim.set_use_calendar_queue(calendar);
  std::vector<Delivery> log;
  std::vector<std::unique_ptr<EchoNode>> nodes;
  const size_t n = 4 + rng.NextBelow(5);
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<EchoNode>(&sim, &log));
  }
  // Churn: a few peers fail and recover on a coarse grid.
  const size_t churns = rng.NextBelow(4);
  for (size_t k = 0; k < churns; ++k) {
    const PeerId p = static_cast<PeerId>(rng.NextBelow(n));
    const double t_fail = 0.01 * static_cast<double>(rng.NextBelow(50));
    const double t_back =
        t_fail + 0.01 * static_cast<double>(1 + rng.NextBelow(30));
    sim.Schedule(t_fail, [&sim, p] { sim.Fail(p); });
    sim.Schedule(t_back, [&sim, p] { sim.Recover(p); });
  }
  const size_t burst = 10 + rng.NextBelow(40);
  for (size_t i = 0; i < burst; ++i) {
    Message m;
    m.from = static_cast<PeerId>(rng.NextBelow(n));
    m.to = static_cast<PeerId>(rng.NextBelow(n));
    m.kind = "ping";
    m.size_bytes = 125 * (1 + rng.NextBelow(40));
    sim.Send(std::move(m));
  }
  // A horizon boundary mid-flight: events at exactly the boundary run,
  // later ones keep their (time, seq) order for the next Run.
  sim.Run(0.05);
  const size_t burst2 = rng.NextBelow(20);
  for (size_t i = 0; i < burst2; ++i) {
    Message m;
    m.from = static_cast<PeerId>(rng.NextBelow(n));
    m.to = static_cast<PeerId>(rng.NextBelow(n));
    m.kind = "ping";
    m.size_bytes = 125 * (1 + rng.NextBelow(40));
    sim.Send(std::move(m));
  }
  sim.Run();

  TraceResult r;
  r.log = std::move(log);
  r.final_now = sim.now();
  r.messages = sim.stats().messages;
  r.bytes = sim.stats().bytes;
  r.events = sim.stats().events_scheduled;
  r.drops_from = sim.stats().drops_from_failed;
  r.drops_to = sim.stats().drops_to_failed;
  return r;
}

TEST(SchedulerEquivalence, ThousandSeedsBitExact) {
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    TraceResult heap = RunTrace(seed, /*calendar=*/false);
    TraceResult cal = RunTrace(seed, /*calendar=*/true);
    ASSERT_EQ(heap.log.size(), cal.log.size()) << "seed " << seed;
    ASSERT_EQ(heap.log, cal.log) << "delivery order diverged, seed " << seed;
    ASSERT_EQ(heap.final_now, cal.final_now) << "seed " << seed;
    ASSERT_EQ(heap.messages, cal.messages) << "seed " << seed;
    ASSERT_EQ(heap.bytes, cal.bytes) << "seed " << seed;
    ASSERT_EQ(heap.events, cal.events) << "seed " << seed;
    ASSERT_EQ(heap.drops_from, cal.drops_from) << "seed " << seed;
    ASSERT_EQ(heap.drops_to, cal.drops_to) << "seed " << seed;
  }
}

// The full stack on top of the scheduler: a joined garage-sale network
// answering area queries must produce identical results, traffic and
// timings under both schedulers.
TEST(SchedulerEquivalence, GarageSaleQueriesIdentical) {
  struct Fingerprint {
    bool complete = false;
    size_t items = 0;
    std::vector<std::string> names;
    double completed_at = 0;
    uint64_t messages = 0, bytes = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  auto run = [](uint64_t seed, bool calendar) {
    Simulator sim;
    sim.set_use_calendar_queue(calendar);
    workload::GarageSaleNetworkParams params;
    params.num_sellers = 6;
    params.items_per_seller = 5;
    params.seed = seed;
    auto net = workload::BuildGarageSaleNetwork(&sim, params);
    auto area = *ns::InterestArea::Parse("(USA,*)");
    Fingerprint fp;
    net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                            [&](const peer::QueryOutcome& o) {
                              fp.complete = o.complete;
                              fp.items = o.items.size();
                              for (const auto& item : o.items) {
                                fp.names.push_back(item->ChildText("name"));
                              }
                              std::sort(fp.names.begin(), fp.names.end());
                              fp.completed_at = o.completed_at;
                            });
    sim.Run();
    fp.messages = sim.stats().messages;
    fp.bytes = sim.stats().bytes;
    return fp;
  };
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Fingerprint heap = run(seed, false);
    Fingerprint cal = run(seed, true);
    EXPECT_TRUE(heap.complete) << "seed " << seed;
    ASSERT_EQ(heap, cal) << "seed " << seed;
  }
}

// Churn + gossip: the most order-sensitive scenario in the repo (failure
// windows, TTL expiry and digest exchange all race on the clock) ends in
// the same version-vector fingerprint under both schedulers.
TEST(SchedulerEquivalence, ChurnScenarioIdentical) {
  auto run = [](uint64_t seed, bool calendar) {
    Simulator sim;
    sim.set_use_calendar_queue(calendar);
    workload::GarageSaleNetworkParams params;
    params.num_sellers = 6;
    params.items_per_seller = 4;
    params.seed = seed;
    auto net = workload::BuildGarageSaleNetwork(&sim, params);
    workload::ChurnParams churn;
    churn.seed = seed;
    churn.duration_seconds = 60;
    churn.event_interval_seconds = 8;
    churn.downtime_seconds = 16;
    churn.query_interval_seconds = 20;
    churn.convergence_tail_seconds = 60;
    churn.sync.gossip_interval_seconds = 4;
    churn.sync.refresh_interval_seconds = 12;
    churn.sync.entry_ttl_seconds = 40;
    workload::ChurnScenario scenario(&sim, &net, churn);
    scenario.EnableSyncEverywhere();
    scenario.Run();
    struct Snap {
      std::string fingerprint;
      uint64_t messages, bytes, events;
    } snap{scenario.VectorFingerprint(), sim.stats().messages,
           sim.stats().bytes, sim.stats().events_scheduled};
    return snap;
  };
  for (uint64_t seed = 3; seed <= 12; ++seed) {
    auto heap = run(seed, false);
    auto cal = run(seed, true);
    ASSERT_EQ(heap.fingerprint, cal.fingerprint) << "seed " << seed;
    ASSERT_EQ(heap.messages, cal.messages) << "seed " << seed;
    ASSERT_EQ(heap.bytes, cal.bytes) << "seed " << seed;
    ASSERT_EQ(heap.events, cal.events) << "seed " << seed;
  }
}

// --- event pool --------------------------------------------------------------

class CountingNode : public net::PeerNode {
 public:
  explicit CountingNode(Simulator* sim) { sim->Register(this); }
  void HandleMessage(const Message&) override { ++received; }
  size_t received = 0;
};

// After a drain every slot is back on the free list, and a second wave
// of the same size is served entirely from recycled slots — zero slab
// growth, every acquire a pool hit.
TEST(EventPool, RecyclesSlotsAcrossWaves) {
  Simulator sim;
  CountingNode a(&sim), b(&sim);
  auto wave = [&] {
    for (int i = 0; i < 500; ++i) {
      Message m;
      m.from = 0;
      m.to = 1;
      m.kind = "ping";
      m.size_bytes = 100 + static_cast<size_t>(i % 7);
      sim.Send(std::move(m));
    }
    sim.Run();
  };
  wave();
  EXPECT_EQ(sim.event_pool().live(), 0u);
  const size_t high_water = sim.event_pool().capacity();
  const uint64_t acquired0 = sim.event_pool().acquired();
  const uint64_t hits0 = sim.event_pool().pool_hits();
  wave();
  EXPECT_EQ(sim.event_pool().live(), 0u);
  EXPECT_EQ(sim.event_pool().capacity(), high_water) << "slab regrew";
  const uint64_t acquired = sim.event_pool().acquired() - acquired0;
  const uint64_t hits = sim.event_pool().pool_hits() - hits0;
  EXPECT_EQ(acquired, hits) << "warm wave missed the free list";
}

// A peer failing with messages already in flight: deliveries are
// suppressed but their slots must still be recycled, never dispatched.
TEST(EventPool, FailedDeliveryStillReleasesSlot) {
  Simulator sim;
  CountingNode a(&sim), b(&sim);
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.kind = "ping";
    m.size_bytes = 100;
    sim.Send(std::move(m));
  }
  sim.Fail(1);  // in transit: Send accepted them, delivery must not land
  sim.Run();
  EXPECT_EQ(b.received, 0u);
  EXPECT_EQ(sim.event_pool().live(), 0u);
  sim.Recover(1);
  Message m;
  m.from = 0;
  m.to = 1;
  m.kind = "ping";
  m.size_bytes = 100;
  sim.Send(std::move(m));
  sim.Run();
  EXPECT_EQ(b.received, 1u);
  EXPECT_EQ(sim.event_pool().live(), 0u);
}

// --- calendar sizing ---------------------------------------------------------

class StampNode : public net::PeerNode {
 public:
  explicit StampNode(Simulator* sim) : sim_(sim) { sim->Register(this); }
  void HandleMessage(const Message& msg) override {
    times.push_back(sim_->now());
    bodies.push_back(msg.body());
  }
  Simulator* sim_;
  std::vector<double> times;
  std::vector<std::string> bodies;
};

// Resize / width-estimation stress: a tie storm (thousands of identical
// times), a wide spread, and interleaved near-tie lattices, in one
// queue's lifetime. Deliveries must stay time-sorted with FIFO ties, and
// the bucket array must actually have adapted.
TEST(CalendarQueue, AdaptsAcrossDistributionShapes) {
  Simulator sim;
  StampNode a(&sim), b(&sim);
  size_t sent = 0;
  // Tie storm: same size => same latency => one shared instant.
  for (int i = 0; i < 4000; ++i, ++sent) {
    sim.Send({0, 1, "ping", std::to_string(i), 500});
  }
  // Wide spread: sizes fan latencies over ~40 seconds.
  for (int i = 0; i < 2000; ++i, ++sent) {
    sim.Send({0, 1, "ping", std::to_string(i),
              25000 * static_cast<size_t>(i + 1)});
  }
  // Interleaved lattices: 16 size classes round-robin.
  for (int i = 0; i < 4000; ++i, ++sent) {
    sim.Send({0, 1, "ping", std::to_string(i),
              1250 * static_cast<size_t>(1 + i % 16)});
  }
  sim.Run();
  ASSERT_EQ(b.times.size(), sent);
  EXPECT_TRUE(std::is_sorted(b.times.begin(), b.times.end()));
  // FIFO within the tie storm: bodies 0..3999 in send order.
  for (int i = 0; i < 4000; ++i) {
    EXPECT_EQ(b.bodies[static_cast<size_t>(i)], std::to_string(i));
  }
  EXPECT_GT(sim.stats().calendar_resizes, 0u);
  EXPECT_EQ(sim.event_pool().live(), 0u);
}

// Run(max_time) with events exactly at the horizon: both schedulers run
// the boundary event now and the rest, in order, on the next Run.
TEST(CalendarQueue, HorizonBoundaryMatchesHeap) {
  for (const bool calendar : {false, true}) {
    Simulator sim;
    sim.set_use_calendar_queue(calendar);
    std::vector<int> order;
    sim.Schedule(1.0, [&] { order.push_back(1); });
    sim.Schedule(1.0, [&] { order.push_back(2); });  // equal-time FIFO
    sim.Schedule(1.5, [&] { order.push_back(3); });
    sim.Schedule(2.0, [&] { order.push_back(4); });
    const size_t first = sim.Run(1.0);
    EXPECT_EQ(first, 2u) << "calendar=" << calendar;
    EXPECT_EQ(sim.pending_events(), 2u);
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4})) << "calendar=" << calendar;
  }
}

// --- interned kinds / NetStats ----------------------------------------------

TEST(KindTable, InternIsStableAndSorted) {
  const net::KindId a = net::InternKind("zz-substrate-test-b");
  const net::KindId b = net::InternKind("zz-substrate-test-a");
  EXPECT_NE(a, b);
  EXPECT_EQ(net::InternKind("zz-substrate-test-b"), a);
  EXPECT_EQ(net::FindKind("zz-substrate-test-a"), b);
  EXPECT_EQ(net::KindNameOf(a), "zz-substrate-test-b");

  net::KindCounters counters;
  counters.Slot(a) += 3;
  counters.Slot(b) += 5;
  EXPECT_EQ(counters.at("zz-substrate-test-b"), 3u);
  EXPECT_EQ(counters.find("zz-substrate-test-a")->second, 5u);
  EXPECT_EQ(counters.find("never-interned-kind-xyz"), counters.end());

  // ForEachSorted iterates in kind-name order regardless of intern order.
  std::vector<std::string> names;
  counters.ForEachSorted([&](std::string_view kind, uint64_t count) {
    if (count > 0) names.emplace_back(kind);
  });
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(NetStats, ClearZeroesEverythingKeepsKinds) {
  Simulator sim;
  CountingNode a(&sim), b(&sim);
  sim.Send({0, 1, "ping", "x", 100});
  sim.Run();
  EXPECT_GT(sim.stats().messages, 0u);
  EXPECT_GT(sim.stats().messages_by_kind.at("ping"), 0u);
  sim.stats().Clear();
  EXPECT_EQ(sim.stats().messages, 0u);
  EXPECT_EQ(sim.stats().bytes, 0u);
  EXPECT_EQ(sim.stats().events_scheduled, 0u);
  EXPECT_EQ(sim.stats().event_pool_hits, 0u);
  EXPECT_EQ(sim.stats().messages_by_kind.at("ping"), 0u);
  // The interned table itself is untouched by a stats clear.
  EXPECT_NE(net::FindKind("ping"), net::kNoKind);
  sim.Send({0, 1, "ping", "x", 100});
  sim.Run();
  EXPECT_EQ(sim.stats().messages, 1u);
  EXPECT_EQ(sim.stats().messages_by_kind.at("ping"), 1u);
}

// --- cached addresses --------------------------------------------------------

TEST(Simulator, AddressCacheAndViewLookup) {
  Simulator sim;
  CountingNode a(&sim), b(&sim);
  // Cached: same storage on every call, equal to the pure computation.
  const std::string& addr0 = sim.Address(0);
  EXPECT_EQ(addr0, Simulator::AddressOf(0));
  EXPECT_EQ(&addr0, &sim.Address(0));
  // Lookup takes a view: subfields of a larger buffer resolve without
  // copying out a std::string first.
  const std::string blob = "peer=" + sim.Address(1) + ";rest";
  const std::string_view view(blob.data() + 5, sim.Address(1).size());
  auto found = sim.Lookup(view);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1u);
}

// --- super-peer builder ------------------------------------------------------

TEST(SuperPeerNetwork, BuildsAndAnswersCityQueries) {
  Simulator sim;
  workload::SuperPeerNetworkParams params;
  params.num_super_peers = 2;
  params.leaves_per_super = 8;
  params.cities_per_super = 4;
  params.categories = 3;
  params.items_per_leaf = 2;
  params.seed = 11;
  params.sync_catalog_tier = true;
  params.sync.gossip_interval_seconds = 5;
  params.sync.horizon_seconds = 30;
  auto net = workload::BuildSuperPeerNetwork(&sim, params);
  ASSERT_EQ(net.super_peers.size(), 2u);
  ASSERT_EQ(net.leaves.size(), 16u);
  EXPECT_EQ(sim.size(), 20u);  // root + client + 2 supers + 16 leaves

  // City (s=0, c=1): leaves j with j % 4 == 1 under super 0 => j in {1,5}.
  peer::QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(
      workload::MakeAreaQueryPlan(workload::SuperPeerCity(0, 1)),
      [&](const peer::QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), 2 * params.items_per_leaf);

  // Region (s=1): every item under super 1.
  done = false;
  net.client->SubmitQuery(
      workload::MakeAreaQueryPlan(workload::SuperPeerRegion(1)),
      [&](const peer::QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(),
            params.leaves_per_super * params.items_per_leaf);

  // The catalog tier gossips; leaves don't (sync load scales with N).
  EXPECT_GT(sim.stats().messages_by_kind.at("sync-digest"), 0u);
}

}  // namespace
}  // namespace mqp
