#include <gtest/gtest.h>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "common/rng.h"
#include "xml/parser.h"

namespace mqp::algebra {
namespace {

Item ItemFrom(const std::string& text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return Item(std::move(doc).value().release());
}

TEST(ValueTest, NumericWhenBothNumeric) {
  EXPECT_LT(Value{"9"}.Compare(Value{"10"}), 0);
  EXPECT_GT(Value{"9a"}.Compare(Value{"10"}), 0);  // lexicographic fallback
  EXPECT_EQ(Value{"10.0"}.Compare(Value{"10"}), 0);
}

TEST(ExprTest, ComparePriceLessThanTen) {
  auto pred = FieldLess("price", "10");
  auto cheap = ItemFrom("<item><price>8</price></item>");
  auto pricey = ItemFrom("<item><price>12</price></item>");
  EXPECT_TRUE(pred->EvalBool(*cheap));
  EXPECT_FALSE(pred->EvalBool(*pricey));
}

TEST(ExprTest, MissingFieldFailsPredicate) {
  auto pred = FieldLess("price", "10");
  auto missing = ItemFrom("<item><name>x</name></item>");
  EXPECT_FALSE(pred->EvalBool(*missing));
}

TEST(ExprTest, AndOrNot) {
  auto item = ItemFrom("<i><a>1</a><b>2</b></i>");
  auto a1 = FieldEquals("a", "1");
  auto b3 = FieldEquals("b", "3");
  EXPECT_FALSE(Expr::And(a1, b3)->EvalBool(*item));
  EXPECT_TRUE(Expr::Or(a1, b3)->EvalBool(*item));
  EXPECT_TRUE(Expr::Not(b3)->EvalBool(*item));
}

TEST(ExprTest, ExistsChecksPresence) {
  auto item = ItemFrom("<i><a>1</a></i>");
  EXPECT_TRUE(Expr::Exists("a")->EvalBool(*item));
  EXPECT_FALSE(Expr::Exists("z")->EvalBool(*item));
}

TEST(ExprTest, JoinConditionReadsBothSides) {
  auto cond = JoinEq("title", "CDtitle");
  auto l = ItemFrom("<cd><title>Kind of Blue</title></cd>");
  auto r1 = ItemFrom("<listing><CDtitle>Kind of Blue</CDtitle></listing>");
  auto r2 = ItemFrom("<listing><CDtitle>Blue Train</CDtitle></listing>");
  EXPECT_TRUE(cond->EvalBool(*l, r1.get()));
  EXPECT_FALSE(cond->EvalBool(*l, r2.get()));
  EXPECT_FALSE(cond->EvalBool(*l, nullptr));
}

TEST(ExprTest, NestedFieldPath) {
  auto item = ItemFrom("<i><seller><city>Portland</city></seller></i>");
  auto pred = FieldEquals("seller/city", "Portland");
  EXPECT_TRUE(pred->EvalBool(*item));
}

TEST(ExprTest, XmlRoundTrip) {
  auto exprs = {
      FieldLess("price", "10"),
      Expr::And(FieldEquals("a", "x"), Expr::Not(Expr::Exists("b"))),
      Expr::Or(JoinEq("l", "r"), FieldGreater("n", "5")),
      Expr::Compare(CompareOp::kNe, Expr::Field("f", Side::kRight),
                    Expr::Literal("v")),
  };
  for (const auto& e : exprs) {
    auto xml_node = e->ToXml();
    auto back = Expr::FromXml(*xml_node);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(e->Equals(**back)) << e->ToString();
  }
}

TEST(ExprTest, ToStringReadable) {
  EXPECT_EQ(FieldLess("price", "10")->ToString(), "price < '10'");
  EXPECT_EQ(JoinEq("a", "b")->ToString(), "a = right.b");
}

PlanNodePtr Figure3Plan() {
  // select(price<10)(urn:ForSale:Portland-CDs) JOIN urn:CD:TrackListings
  // JOIN favorite songs, under a display target (paper Figure 3).
  ItemSet songs;
  songs.push_back(ItemFrom("<song><name>So What</name></song>"));
  songs.push_back(ItemFrom("<song><name>Blue in Green</name></song>"));
  auto sel = PlanNode::Select(FieldLess("price", "10"),
                              PlanNode::UrnRef("urn:ForSale:Portland-CDs"));
  auto join1 = PlanNode::Join(JoinEq("title", "CDtitle"), sel,
                              PlanNode::UrnRef("urn:CD:TrackListings"));
  auto join2 = PlanNode::Join(JoinEq("song", "name"), join1,
                              PlanNode::XmlData(std::move(songs)));
  return PlanNode::Display("129.95.50.105:9020", join2);
}

TEST(PlanTest, Figure3Construction) {
  auto root = Figure3Plan();
  EXPECT_EQ(root->type(), OpType::kDisplay);
  EXPECT_EQ(root->target(), "129.95.50.105:9020");
  EXPECT_EQ(root->NodeCount(), 7u);
  EXPECT_EQ(root->UrnLeaves().size(), 2u);
  EXPECT_TRUE(root->UrlLeaves().empty());
}

TEST(PlanTest, CloneIsDeepAndPreservesSharing) {
  auto shared = PlanNode::UrnRef("urn:X:Y");
  auto u = PlanNode::Union({shared, PlanNode::Select(
                                        FieldLess("p", "1"), shared)});
  EXPECT_EQ(u->NodeCount(), 3u);  // union, select, shared urn
  auto clone = u->Clone();
  EXPECT_EQ(clone->NodeCount(), 3u);
  EXPECT_TRUE(u->Equals(*clone));
  // Mutating the clone must not affect the original.
  clone->mutable_children()[0] = PlanNode::XmlData({});
  EXPECT_EQ(u->child(0)->type(), OpType::kUrn);
}

TEST(PlanTest, FullyEvaluatedDetection) {
  Plan p(Figure3Plan());
  EXPECT_FALSE(p.IsFullyEvaluated());
  EXPECT_FALSE(p.ResultItems().ok());

  ItemSet data;
  data.push_back(ItemFrom("<r><t>done</t></r>"));
  Plan done(PlanNode::Display("c:1", PlanNode::XmlData(std::move(data))));
  EXPECT_TRUE(done.IsFullyEvaluated());
  auto items = done.ResultItems();
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 1u);
  // Also without a display wrapper.
  Plan bare(PlanNode::XmlData({}));
  EXPECT_TRUE(bare.IsFullyEvaluated());
}

TEST(PlanTest, TargetFromDisplay) {
  Plan p(Figure3Plan());
  EXPECT_EQ(p.target(), "129.95.50.105:9020");
  Plan q(PlanNode::UrnRef("urn:a:b"));
  EXPECT_EQ(q.target(), "");
}

TEST(PlanXmlTest, Figure3RoundTrip) {
  Plan p(Figure3Plan());
  p.provenance().Add({"peer-1", 1.5, ProvenanceAction::kBound,
                      "urn:ForSale:Portland-CDs", 0});
  const std::string wire = SerializePlan(p);
  auto back = ParsePlan(wire);
  ASSERT_TRUE(back.ok()) << back.status() << "\n" << wire;
  EXPECT_TRUE(p.root()->Equals(*back->root())) << wire;
  ASSERT_EQ(back->provenance().size(), 1u);
  EXPECT_EQ(back->provenance().entries()[0].server, "peer-1");
  EXPECT_EQ(back->provenance().entries()[0].action,
            ProvenanceAction::kBound);
}

TEST(PlanXmlTest, WireSizeMatchesSerializedLength) {
  Plan p(Figure3Plan());
  EXPECT_EQ(PlanWireSize(p), SerializePlan(p).size());
}

TEST(PlanXmlTest, AnnotationsSurvive) {
  auto urn = PlanNode::UrnRef("urn:a:b");
  urn->annotations().cardinality = 1000000;
  urn->annotations().distinct_keys = 512;
  urn->annotations().staleness_minutes = 30;
  Plan p(PlanNode::Select(FieldLess("x", "1"), urn));
  auto back = ParsePlan(SerializePlan(p));
  ASSERT_TRUE(back.ok()) << back.status();
  const auto& a = back->root()->child(0)->annotations();
  EXPECT_EQ(a.cardinality, 1000000u);
  EXPECT_EQ(a.distinct_keys, 512u);
  EXPECT_EQ(a.staleness_minutes, 30);
}

TEST(PlanXmlTest, SharedNodeSerializedOnceAndRestored) {
  auto shared = PlanNode::Url("10.0.0.1:9020", "/data[@id=1]");
  auto plan_root = PlanNode::Union(
      {PlanNode::Select(FieldLess("p", "5"), shared),
       PlanNode::Select(FieldGreater("p", "100"), shared)});
  Plan p(plan_root);
  const std::string wire = SerializePlan(p);
  // The URL text must appear exactly once in the wire form.
  size_t first = wire.find("10.0.0.1:9020");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(wire.find("10.0.0.1:9020", first + 1), std::string::npos);
  EXPECT_NE(wire.find("<ref"), std::string::npos);

  auto back = ParsePlan(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->root()->NodeCount(), 4u);  // sharing restored
  EXPECT_EQ(back->root()->child(0)->child(0).get(),
            back->root()->child(1)->child(0).get());
}

TEST(PlanXmlTest, OriginalPlanCarried) {
  Plan p(Figure3Plan());
  p.SnapshotOriginal();
  // Mutate: replace the whole plan with constant data.
  ItemSet data;
  data.push_back(ItemFrom("<done/>"));
  p.set_root(PlanNode::Display(p.target(), PlanNode::XmlData(data)));
  auto back = ParsePlan(SerializePlan(p));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_NE(back->original(), nullptr);
  EXPECT_EQ(back->original()->NodeCount(), 7u);
  EXPECT_TRUE(back->IsFullyEvaluated());
}

TEST(PlanXmlTest, DataItemsRoundTrip) {
  ItemSet items;
  items.push_back(ItemFrom("<item><name>a&amp;b</name><price>5</price></item>"));
  items.push_back(ItemFrom("<item kind=\"cd\"><price>9.99</price></item>"));
  Plan p(PlanNode::XmlData(items));
  auto back = ParsePlan(SerializePlan(p));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->root()->items().size(), 2u);
  EXPECT_TRUE(back->root()->items()[0]->Equals(*items[0]));
  EXPECT_TRUE(back->root()->items()[1]->Equals(*items[1]));
}

TEST(PlanXmlTest, AllOperatorsRoundTrip) {
  ItemSet data;
  data.push_back(ItemFrom("<i><v>1</v></i>"));
  auto d = PlanNode::XmlData(data);
  auto plan_root = PlanNode::TopN(
      5, "v", false,
      PlanNode::Aggregate(
          AggFunc::kAvg, "v", "g",
          PlanNode::Difference(
              PlanNode::Project(
                  {"v", "g"},
                  PlanNode::Or({PlanNode::Union({d, PlanNode::UrnRef(
                                                        "urn:a:b")}),
                                PlanNode::Url("h:1", "/data[@id=2]")})),
              PlanNode::XmlData({}))));
  Plan p(plan_root);
  auto back = ParsePlan(SerializePlan(p));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(p.root()->Equals(*back->root()))
      << SerializePlan(p, true) << "\nvs\n"
      << SerializePlan(*back, true);
}

TEST(PlanXmlTest, ParseErrors) {
  EXPECT_FALSE(ParsePlan("<mqp></mqp>").ok());          // no <plan>
  EXPECT_FALSE(ParsePlan("<mqp><plan/></mqp>").ok());   // empty plan
  EXPECT_FALSE(ParsePlan("<notmqp/>").ok());
  EXPECT_FALSE(
      ParsePlan("<mqp><plan><select><field path=\"x\"/></select></plan></mqp>")
          .ok());  // select missing input
  EXPECT_FALSE(
      ParsePlan("<mqp><plan><bogus/></plan></mqp>").ok());
  EXPECT_FALSE(
      ParsePlan("<mqp><plan><ref id=\"9\"/></plan></mqp>").ok());  // dangling
}

// Property: random plans round-trip through XML.
class PlanRoundTrip : public ::testing::TestWithParam<uint64_t> {};

PlanNodePtr RandomPlanNode(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.25)) {
    switch (rng->NextBelow(3)) {
      case 0: {
        ItemSet items;
        const uint64_t n = rng->NextBelow(3);
        for (uint64_t i = 0; i < n; ++i) {
          auto e = xml::Node::Element("item");
          e->AddElementWithText("f", rng->NextWord(3));
          items.push_back(Item(e.release()));
        }
        return PlanNode::XmlData(std::move(items));
      }
      case 1:
        return PlanNode::Url(rng->NextWord(6) + ":9020",
                             "/data[@id=" + std::to_string(rng->NextBelow(99)) +
                                 "]");
      default:
        return PlanNode::UrnRef("urn:T:" + rng->NextWord(8));
    }
  }
  switch (rng->NextBelow(8)) {
    case 0:
      return PlanNode::Select(FieldLess(rng->NextWord(3),
                                        std::to_string(rng->NextBelow(100))),
                              RandomPlanNode(rng, depth - 1));
    case 1:
      return PlanNode::Project({rng->NextWord(3), rng->NextWord(4)},
                               RandomPlanNode(rng, depth - 1));
    case 2:
      return PlanNode::Join(JoinEq(rng->NextWord(3), rng->NextWord(3)),
                            RandomPlanNode(rng, depth - 1),
                            RandomPlanNode(rng, depth - 1));
    case 3: {
      std::vector<PlanNodePtr> inputs;
      const uint64_t n = 1 + rng->NextBelow(3);
      for (uint64_t i = 0; i < n; ++i) {
        inputs.push_back(RandomPlanNode(rng, depth - 1));
      }
      return PlanNode::Union(std::move(inputs));
    }
    case 4: {
      std::vector<PlanNodePtr> alts;
      const uint64_t n = 1 + rng->NextBelow(2);
      for (uint64_t i = 0; i < n; ++i) {
        alts.push_back(RandomPlanNode(rng, depth - 1));
      }
      return PlanNode::Or(std::move(alts));
    }
    case 5:
      return PlanNode::Difference(RandomPlanNode(rng, depth - 1),
                                  RandomPlanNode(rng, depth - 1));
    case 6:
      return PlanNode::Aggregate(
          static_cast<AggFunc>(rng->NextBelow(5)), rng->NextWord(3),
          rng->NextBool() ? rng->NextWord(3) : "",
          RandomPlanNode(rng, depth - 1));
    default:
      return PlanNode::TopN(rng->NextBelow(20), rng->NextWord(3),
                            rng->NextBool(), RandomPlanNode(rng, depth - 1));
  }
}

TEST_P(PlanRoundTrip, SerializeParseIdentity) {
  Rng rng(GetParam());
  Plan p(PlanNode::Display("client:" + std::to_string(GetParam()),
                           RandomPlanNode(&rng, 4)));
  const std::string wire = SerializePlan(p);
  auto back = ParsePlan(wire);
  ASSERT_TRUE(back.ok()) << back.status() << "\n" << wire;
  EXPECT_TRUE(p.root()->Equals(*back->root())) << wire;
  EXPECT_EQ(back->target(), p.target());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanRoundTrip,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace mqp::algebra
