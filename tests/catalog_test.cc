#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/intension.h"
#include "ns/urn.h"

namespace mqp::catalog {
namespace {

using ns::InterestArea;
using ns::MakeArea;

TEST(HoldingRefTest, ParseToStringRoundTrip) {
  for (const char* text :
       {"base[(USA.OR.Portland,*)]@10.0.0.7:9020",
        "index[(USA.OR,SportingGoods)]@R",
        "base[(USA.OR.Portland,*)]@S{30}",
        "base[(USA.OR,Furniture)+(USA.WA,Furniture)]@T{5}"}) {
    auto ref = HoldingRef::Parse(text);
    ASSERT_TRUE(ref.ok()) << text << ": " << ref.status();
    EXPECT_EQ(ref->ToString(), text);
  }
}

TEST(HoldingRefTest, Malformed) {
  EXPECT_FALSE(HoldingRef::Parse("data[(a,b)]@X").ok());
  EXPECT_FALSE(HoldingRef::Parse("base[(a,b)]").ok());
  EXPECT_FALSE(HoldingRef::Parse("base[(a,b)]@").ok());
  EXPECT_FALSE(HoldingRef::Parse("base[(a,b)]@X{").ok());
  EXPECT_FALSE(HoldingRef::Parse("base[(a,b)]@X{-3}").ok());
}

TEST(IntensionalStatementTest, EqualsRoundTrip) {
  // The paper's §4.1 replication statement.
  const char* text =
      "base[(USA.OR.Portland,*)]@R = base[(USA.OR.Portland,*)]@S";
  auto st = IntensionalStatement::Parse(text);
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->relation, IntensionRelation::kEquals);
  EXPECT_EQ(st->lhs.server, "R");
  ASSERT_EQ(st->rhs.size(), 1u);
  EXPECT_EQ(st->rhs[0].server, "S");
  EXPECT_EQ(st->ToString(), text);
}

TEST(IntensionalStatementTest, ContainsWithDelay) {
  // §4.3: R replicates S for Portland with up to 30 minutes lag.
  const char* text =
      "base[(USA.OR.Portland,*)]@R >= base[(USA.OR.Portland,*)]@S{30}";
  auto st = IntensionalStatement::Parse(text);
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->relation, IntensionRelation::kContains);
  EXPECT_EQ(st->rhs[0].delay_minutes, 30);
  EXPECT_EQ(st->ToString(), text);
}

TEST(IntensionalStatementTest, UnionRhs) {
  // §4.1: R's index covers base data at S, T and U.
  const char* text =
      "index[(USA.OR,SportingGoods.GolfClubs)]@R = "
      "base[(USA.OR,SportingGoods.GolfClubs)]@S + "
      "base[(USA.OR,SportingGoods.GolfClubs)]@T + "
      "base[(USA.OR,SportingGoods.GolfClubs)]@U";
  auto st = IntensionalStatement::Parse(text);
  ASSERT_TRUE(st.ok()) << st.status();
  ASSERT_EQ(st->rhs.size(), 3u);
  EXPECT_EQ(st->rhs[2].server, "U");
  EXPECT_EQ(st->ToString(), text);
}

TEST(IntensionalStatementTest, AreaWithPlusInsideCells) {
  const char* text =
      "base[(USA.OR,Furniture)+(USA.WA,Furniture)]@A = "
      "base[(USA.OR,Furniture)+(USA.WA,Furniture)]@B";
  auto st = IntensionalStatement::Parse(text);
  ASSERT_TRUE(st.ok()) << st.status();
  EXPECT_EQ(st->lhs.area.size(), 2u);
  EXPECT_EQ(st->ToString(), text);
}

IndexEntry Entry(HoldingLevel level, const std::string& area,
                 const std::string& server, const std::string& xpath = "",
                 int delay = 0) {
  IndexEntry e;
  e.level = level;
  e.area = *InterestArea::Parse(area);
  e.server = server;
  e.xpath = xpath;
  e.delay_minutes = delay;
  return e;
}

TEST(CatalogTest, NamedMappingResolvesToUnionOfUrls) {
  Catalog cat;
  cat.AddNamedMapping("urn:ForSale:Portland-CDs", "10.1.2.3:9020",
                      "/data[id=1]");
  cat.AddNamedMapping("urn:ForSale:Portland-CDs", "10.2.3.4:9020",
                      "/data[id=2]");
  auto binding = cat.Resolve("urn:ForSale:Portland-CDs");
  ASSERT_TRUE(binding.ok()) << binding.status();
  ASSERT_EQ(binding->alternatives.size(), 1u);
  ASSERT_EQ(binding->alternatives[0].sources.size(), 2u);
  EXPECT_EQ(binding->alternatives[0].sources[0].server, "10.1.2.3:9020");

  // Figure 4(a): the plan fragment is a union of the two seller URLs.
  auto plan = BindingToPlan(*binding);
  EXPECT_EQ(plan->type(), algebra::OpType::kUnion);
  EXPECT_EQ(plan->children().size(), 2u);
  EXPECT_EQ(plan->child(0)->type(), algebra::OpType::kUrl);
}

TEST(CatalogTest, UnknownUrnIsEmptyBinding) {
  Catalog cat;
  auto binding = cat.Resolve("urn:ForSale:Nothing");
  ASSERT_TRUE(binding.ok());
  EXPECT_TRUE(binding->empty());
  EXPECT_FALSE(cat.Resolve("garbage").ok());
}

TEST(CatalogTest, AreaResolutionFindsOverlappingEntries) {
  Catalog cat;
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR.Portland,Music)", "A",
                     "/data[id=1]"));
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR,SportingGoods)", "B",
                     "/data[id=2]"));
  cat.AddEntry(Entry(HoldingLevel::kBase, "(France,Music)", "C",
                     "/data[id=3]"));
  auto binding =
      cat.ResolveArea(*InterestArea::Parse("(USA.OR.Portland,Music.CDs)"),
                      "urn:InterestArea:(USA.OR.Portland,Music.CDs)");
  ASSERT_EQ(binding.alternatives.size(), 1u);
  ASSERT_EQ(binding.alternatives[0].sources.size(), 1u);
  EXPECT_EQ(binding.alternatives[0].sources[0].server, "A");
  // The portion is narrowed to the intersection.
  EXPECT_EQ(binding.alternatives[0].sources[0].portion.ToString(),
            "(USA.OR.Portland,Music.CDs)");
}

TEST(CatalogTest, MetaLevelReferralsBecomeHintedUrns) {
  Catalog cat;
  cat.AddEntry(Entry(HoldingLevel::kIndex, "(USA.OR,*)", "IDX"));
  auto area = *InterestArea::Parse("(USA.OR.Portland,Music)");
  auto binding = cat.ResolveArea(area, ns::AreaToUrn(area).ToString());
  ASSERT_EQ(binding.alternatives.size(), 1u);
  auto plan = BindingToPlan(binding);
  ASSERT_EQ(plan->type(), algebra::OpType::kUrn);
  EXPECT_EQ(plan->urn_hint(), "IDX");
  // The referral URN carries the narrowed portion.
  EXPECT_EQ(plan->urn(), "urn:InterestArea:(USA.OR.Portland,Music)");
}

TEST(CatalogTest, ExampleOneRedundancyPrunesOneServer) {
  // Paper §4.2 Example 1: R ([Portland, Recreation]) and S ([Oregon,
  // Sporting Goods]) hold identical Portland sporting goods (modelling
  // SportingGoods as Recreation/SportingGoods so the areas are comparable);
  // the binding should offer an alternative that visits only one of them.
  Catalog cat;
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR.Portland,Recreation)",
                     "R", "/data[id=r]"));
  cat.AddEntry(Entry(HoldingLevel::kBase,
                     "(USA.OR,Recreation.SportingGoods)", "S",
                     "/data[id=s]"));
  auto st = IntensionalStatement::Parse(
      "base[(USA.OR.Portland,Recreation.SportingGoods)]@R = "
      "base[(USA.OR.Portland,Recreation.SportingGoods)]@S");
  ASSERT_TRUE(st.ok());
  cat.AddStatement(*st);

  auto request =
      *InterestArea::Parse("(USA.OR.Portland,Recreation.SportingGoods)");
  auto binding = cat.ResolveArea(request, ns::AreaToUrn(request).ToString());
  ASSERT_GE(binding.alternatives.size(), 1u);
  // The binding collapses to a single server — "it need not go to both";
  // the redundant R ∪ S union is not offered.
  EXPECT_EQ(binding.alternatives[0].sources.size(), 1u);
  for (const auto& alt : binding.alternatives) {
    EXPECT_LE(alt.sources.size(), 1u) << binding.ToString();
  }

  // Without statements, only the 2-server answer exists.
  cat.set_use_statements(false);
  auto plain = cat.ResolveArea(request, "");
  ASSERT_EQ(plain.alternatives.size(), 1u);
  EXPECT_EQ(plain.alternatives[0].sources.size(), 2u);
}

TEST(CatalogTest, ExampleTwoIndexCoverage) {
  // Paper §4.2 Example 2: R's index covers exactly the bases S, T, U.
  Catalog cat;
  auto st = IntensionalStatement::Parse(
      "index[(USA.OR,SportingGoods.GolfClubs)]@R = "
      "base[(USA.OR,SportingGoods.GolfClubs)]@S + "
      "base[(USA.OR,SportingGoods.GolfClubs)]@T + "
      "base[(USA.OR,SportingGoods.GolfClubs)]@U");
  ASSERT_TRUE(st.ok()) << st.status();
  cat.AddStatement(*st);
  cat.AddEntry(Entry(HoldingLevel::kIndex, "(USA.OR,*)", "R"));

  auto request =
      *InterestArea::Parse("(USA.OR.Portland,SportingGoods.GolfClubs)");
  auto binding = cat.ResolveArea(request, ns::AreaToUrn(request).ToString());
  // Alternatives: route via index R, or go directly to S ∪ T ∪ U.
  bool has_index_alt = false;
  bool has_direct_alt = false;
  for (const auto& alt : binding.alternatives) {
    if (alt.sources.size() == 1 &&
        alt.sources[0].level == HoldingLevel::kIndex &&
        alt.sources[0].server == "R") {
      has_index_alt = true;
    }
    if (alt.sources.size() == 3) has_direct_alt = true;
  }
  EXPECT_TRUE(has_index_alt) << binding.ToString();
  EXPECT_TRUE(has_direct_alt) << binding.ToString();
}

TEST(CatalogTest, ExampleThreeContainmentWithDelay) {
  // Paper §4.3: R ⊇ S{30} for Portland. Binding:
  // R{30} | (R ∪ S){0}.
  Catalog cat;
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR.Portland,*)", "R",
                     "/data[id=r]"));
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR.Portland,*)", "S",
                     "/data[id=s]"));
  auto st = IntensionalStatement::Parse(
      "base[(USA.OR.Portland,*)]@R >= base[(USA.OR.Portland,*)]@S{30}");
  ASSERT_TRUE(st.ok());
  cat.AddStatement(*st);

  auto request = *InterestArea::Parse("(USA.OR.Portland,Music.CDs)");
  auto binding = cat.ResolveArea(request, ns::AreaToUrn(request).ToString());
  bool has_stale_single = false;
  bool has_fresh_pair = false;
  for (const auto& alt : binding.alternatives) {
    if (alt.sources.size() == 1 && alt.sources[0].server == "R" &&
        alt.MaxStaleness() == 30) {
      has_stale_single = true;
    }
    if (alt.sources.size() == 2 && alt.MaxStaleness() == 0) {
      has_fresh_pair = true;
    }
  }
  EXPECT_TRUE(has_stale_single) << binding.ToString();
  EXPECT_TRUE(has_fresh_pair) << binding.ToString();
}

TEST(CatalogTest, RemoveServerDropsEntries) {
  Catalog cat;
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA,*)", "A", "/data[id=1]"));
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA,*)", "B", "/data[id=2]"));
  cat.AddNamedMapping("urn:X:Y", "A", "/data[id=3]");
  cat.RemoveServer("A");
  auto area = *InterestArea::Parse("(USA.OR,Music)");
  auto binding = cat.ResolveArea(area, "");
  ASSERT_EQ(binding.alternatives.size(), 1u);
  ASSERT_EQ(binding.alternatives[0].sources.size(), 1u);
  EXPECT_EQ(binding.alternatives[0].sources[0].server, "B");
  auto named = cat.Resolve("urn:X:Y");
  ASSERT_TRUE(named.ok());
  EXPECT_TRUE(named->empty());
}

TEST(CatalogTest, RemoveServerDropsReferencingStatements) {
  // Regression: statements referencing a departed server used to linger —
  // an equality statement would keep pruning the *live* replica out of
  // bindings in favor of the dead one.
  Catalog cat;
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA,*)", "A", "/data[id=1]"));
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA,*)", "B", "/data[id=2]"));
  cat.AddEntry(Entry(HoldingLevel::kBase, "(France,*)", "C", "/data[id=3]"));
  cat.AddStatement(
      *IntensionalStatement::Parse("base[(USA,*)]@A = base[(USA,*)]@B"));
  cat.AddStatement(
      *IntensionalStatement::Parse("base[(France,*)]@C >= base[(France,*)]@D{10}"));
  cat.RemoveServer("A");
  // The A = B statement names A on the lhs: gone. The C >= D statement
  // does not mention A: kept.
  ASSERT_EQ(cat.statements().size(), 1u);
  EXPECT_EQ(cat.statements()[0].lhs.server, "C");
  // B must now bind alone, not be pruned by the stale equality.
  auto binding = cat.ResolveArea(*InterestArea::Parse("(USA.OR,*)"), "");
  ASSERT_EQ(binding.alternatives.size(), 1u);
  ASSERT_EQ(binding.alternatives[0].sources.size(), 1u);
  EXPECT_EQ(binding.alternatives[0].sources[0].server, "B");
  // Statements naming the departed server on the *rhs* are dropped too.
  cat.RemoveServer("D");
  EXPECT_TRUE(cat.statements().empty());
}

TEST(CatalogTest, RemoveExactEntry) {
  Catalog cat;
  auto a = Entry(HoldingLevel::kBase, "(USA,*)", "A", "/data[id=1]");
  auto b = Entry(HoldingLevel::kBase, "(USA,*)", "A", "/data[id=2]");
  cat.AddEntry(a);
  cat.AddEntry(b);
  EXPECT_TRUE(cat.RemoveEntry(a));
  EXPECT_FALSE(cat.RemoveEntry(a));  // already gone
  ASSERT_EQ(cat.entries().size(), 1u);
  EXPECT_EQ(cat.entries()[0].xpath, "/data[id=2]");
  cat.AddNamedMapping("urn:X:Y", "A", "/data[id=3]");
  IndexEntry named;
  named.level = HoldingLevel::kBase;
  named.server = "A";
  named.xpath = "/data[id=3]";
  EXPECT_TRUE(cat.RemoveNamedEntry("urn:X:Y", named));
  EXPECT_FALSE(cat.RemoveNamedEntry("urn:X:Y", named));
  auto resolved = cat.Resolve("urn:X:Y");
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->empty());
}

TEST(CatalogTest, DuplicateEntriesAndStatementsIgnored) {
  Catalog cat;
  auto e = Entry(HoldingLevel::kBase, "(USA,*)", "A", "/data[id=1]");
  cat.AddEntry(e);
  cat.AddEntry(e);
  EXPECT_EQ(cat.entries().size(), 1u);
  auto st = *IntensionalStatement::Parse("base[(USA,*)]@A = base[(USA,*)]@B");
  cat.AddStatement(st);
  cat.AddStatement(st);
  EXPECT_EQ(cat.statements().size(), 1u);
}

TEST(CatalogTest, ApproximatesUnknownCategoriesToAncestors) {
  // §3.5 / Walker [W80]: "we could rewrite a reference to
  // USA/OR/Portland into USA/OR, with a possible loss of precision, but
  // no loss of recall."
  Catalog cat;
  static const ns::MultiHierarchy hierarchy = ns::MakeGarageSaleNamespace();
  cat.set_hierarchies(&hierarchy);
  // This catalog is authoritative for Oregon (the widened request must
  // still pass the §4.1 completeness gate).
  cat.SetAuthority(*InterestArea::Parse("(USA.OR,*)"), true);
  // A serves Portland CDs. A query for the unknown category "Music/Tapes"
  // diverges from "Music/CDs", so without approximation A is missed; the
  // rewrite to the known ancestor "Music" recovers it (wider, so recall
  // is preserved at the cost of precision).
  cat.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR.Portland,Music.CDs)",
                     "A", "/data[id=1]"));
  auto request =
      *InterestArea::Parse("(USA.OR.Portland.Hawthorne,Music.Tapes)");
  auto approx = cat.ApproximateRequest(request);
  EXPECT_EQ(approx.ToString(), "(USA.OR.Portland,Music)");
  auto binding = cat.ResolveArea(request, "urn:x");
  ASSERT_EQ(binding.alternatives.size(), 1u);
  EXPECT_EQ(binding.alternatives[0].sources[0].server, "A");
  // Without the namespace attached, the diverging category finds nothing.
  Catalog bare;
  bare.SetAuthority(*InterestArea::Parse("(USA.OR,*)"), true);
  bare.AddEntry(Entry(HoldingLevel::kBase, "(USA.OR.Portland,Music.CDs)",
                      "A", "/data[id=1]"));
  EXPECT_TRUE(bare.ResolveArea(request, "urn:x").empty());
}

TEST(CatalogTest, BindingToPlanWithStalenessAnnotation) {
  Binding binding;
  binding.urn = "urn:InterestArea:(USA,*)";
  BindingAlternative stale;
  stale.sources.push_back({HoldingLevel::kBase, "R", "/data[id=1]",
                           *InterestArea::Parse("(USA,*)"), 30});
  BindingAlternative fresh;
  fresh.sources.push_back({HoldingLevel::kBase, "R", "/data[id=1]",
                           *InterestArea::Parse("(USA,*)"), 0});
  fresh.sources.push_back({HoldingLevel::kBase, "S", "/data[id=2]",
                           *InterestArea::Parse("(USA,*)"), 0});
  binding.alternatives = {stale, fresh};
  auto plan = BindingToPlan(binding);
  ASSERT_EQ(plan->type(), algebra::OpType::kOr);
  ASSERT_EQ(plan->children().size(), 2u);
  EXPECT_EQ(plan->child(0)->annotations().staleness_minutes, 30);
  EXPECT_EQ(plan->child(1)->type(), algebra::OpType::kUnion);
}

}  // namespace
}  // namespace mqp::catalog
