// End-to-end tests: full P2P networks exchanging serialized MQPs.
#include "net/simulator.h"
#include "common/strings.h"
#include <gtest/gtest.h>

#include "ns/urn.h"
#include "peer/peer.h"
#include "peer/verification.h"
#include "workload/cd_market.h"
#include "workload/garage_sale.h"
#include "workload/gene_expression.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using algebra::FieldLess;
using algebra::Plan;
using algebra::PlanNode;
using peer::Peer;
using peer::PeerOptions;
using peer::QueryOutcome;
using workload::BuildGarageSaleNetwork;
using workload::GarageSaleGenerator;
using workload::GarageSaleNetworkParams;
using workload::MakeAreaQueryPlan;

TEST(IntegrationTest, RegistrationPopulatesIndexLevels) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 12;
  params.items_per_seller = 5;
  auto net = BuildGarageSaleNetwork(&sim, params);
  // The meta server knows the index servers but no seller collections.
  size_t meta_base_entries = 0, meta_index_entries = 0;
  for (const auto& e : net.top_meta->catalog().entries()) {
    if (e.level == catalog::HoldingLevel::kBase) {
      ++meta_base_entries;
    } else {
      ++meta_index_entries;
    }
  }
  EXPECT_EQ(meta_base_entries, 0u);
  EXPECT_GE(meta_index_entries, 1u);
  // Each seller is indexed by exactly one state index server, with an
  // xpath collection id.
  size_t indexed = 0;
  for (Peer* idx : net.index_servers) {
    for (const auto& e : idx->catalog().entries()) {
      if (e.level == catalog::HoldingLevel::kBase &&
          !e.xpath.empty()) {
        ++indexed;
      }
    }
  }
  EXPECT_EQ(indexed, net.sellers.size());
}

TEST(IntegrationTest, AreaQueryReturnsAllMatchingItems) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 16;
  params.items_per_seller = 8;
  params.seed = 7;
  auto net = BuildGarageSaleNetwork(&sim, params);

  auto area = *ns::InterestArea::Parse("(USA.OR,*)");
  const size_t expected =
      GarageSaleGenerator::CountInArea(net.all_items, area);
  ASSERT_GT(expected, 0u) << "seed must place sellers in Oregon";

  QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(MakeAreaQueryPlan(area),
                          [&](const QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  ASSERT_TRUE(done) << "query never returned";
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), expected);
  // The plan visited client → meta → index → sellers: at least 3 hops.
  EXPECT_GE(outcome.provenance.size(), 3u);
}

TEST(IntegrationTest, SelectionIsAppliedDuringMigration) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 16;
  params.items_per_seller = 10;
  params.seed = 11;
  auto net = BuildGarageSaleNetwork(&sim, params);

  auto area = *ns::InterestArea::Parse("(USA,*)");
  QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(
      MakeAreaQueryPlan(area, FieldLess("price", "50")),
      [&](const QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  size_t expected = 0;
  for (const auto& item : net.all_items) {
    if (!GarageSaleGenerator::ItemInArea(*item, area)) continue;
    double price = 0;
    if (ParseDouble(item->ChildText("price"), &price) && price < 50) {
      ++expected;
    }
  }
  EXPECT_EQ(outcome.items.size(), expected);
  for (const auto& item : outcome.items) {
    double price = 0;
    ASSERT_TRUE(ParseDouble(item->ChildText("price"), &price));
    EXPECT_LT(price, 50);
  }
}

TEST(IntegrationTest, DisjointAreaReturnsEmptyComplete) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.seed = 3;
  auto net = BuildGarageSaleNetwork(&sim, params);
  // France/PACA/Marseille exists in the namespace; with few sellers the
  // seed may leave it empty — query a category no generator item uses.
  auto area = *ns::InterestArea::Parse("(France,Books)");
  const size_t expected =
      GarageSaleGenerator::CountInArea(net.all_items, area);
  QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(MakeAreaQueryPlan(area),
                          [&](const QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome.items.size(), expected);
}

TEST(IntegrationTest, Figure3CdQueryEndToEnd) {
  net::Simulator sim;
  workload::CdMarketGenerator gen(21);
  auto titles = gen.MakeTitles(40);

  // Two CD sellers in Portland, a track-listing service, an index server
  // for the ForSale URN, and a client.
  PeerOptions base;
  base.roles.base = true;
  Peer seller1(&sim, [&] {
    auto o = base;
    o.name = "seller1";
    return o;
  }());
  Peer seller2(&sim, [&] {
    auto o = base;
    o.name = "seller2";
    return o;
  }());
  Peer tracklist(&sim, [&] {
    auto o = base;
    o.name = "cddb";
    return o;
  }());
  PeerOptions idx_opts;
  idx_opts.name = "resolver";
  idx_opts.roles.index = true;
  Peer resolver(&sim, idx_opts);
  PeerOptions client_opts;
  client_opts.name = "client";
  Peer client(&sim, client_opts);

  auto cds1 = gen.MakeSellerCds(titles, "seller1", 30);
  auto cds2 = gen.MakeSellerCds(titles, "seller2", 30);
  auto listings = gen.MakeTrackListings(titles, 3);
  auto favorites = gen.MakeFavoriteSongs(listings, 10);

  seller1.PublishNamed("urn:ForSale:Portland-CDs", "cds", cds1);
  seller2.PublishNamed("urn:ForSale:Portland-CDs", "cds", cds2);
  tracklist.PublishNamed("urn:CD:TrackListings", "listings", listings);
  for (Peer* p : {&seller1, &seller2, &tracklist}) {
    p->AddBootstrap(resolver.address());
    p->JoinNetwork();
  }
  sim.Run();
  client.AddBootstrap(resolver.address());

  auto plan = workload::MakeFigure3Plan(favorites, "urn:ForSale:Portland-CDs",
                                        "urn:CD:TrackListings", "", "10");
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(std::move(plan), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete)
      << outcome.final_plan.root()->ToDebugString();

  // Reference evaluation: join everything centrally.
  algebra::ItemSet all_cds = cds1;
  all_cds.insert(all_cds.end(), cds2.begin(), cds2.end());
  auto reference = PlanNode::Join(
      algebra::JoinEq("song", "name"),
      PlanNode::Join(algebra::JoinEq("title", "CDtitle"),
                     PlanNode::Select(FieldLess("price", "10"),
                                      PlanNode::XmlData(all_cds)),
                     PlanNode::XmlData(listings)),
      PlanNode::XmlData(favorites));
  auto expected = engine::Evaluate(*reference);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(outcome.items.size(), expected->size());
}

TEST(IntegrationTest, GeneExpressionCoverageRouting) {
  // Figure 1: a query about mammalian heart cells must reach the rodent
  // and human groups but never the fruit-fly group.
  net::Simulator sim;
  workload::GeneExpressionGenerator gen(5);

  const std::vector<std::string> gene_fields = {"organism", "celltype"};
  PeerOptions meta_opts;
  meta_opts.name = "nih-meta";
  meta_opts.roles.meta_index = true;
  meta_opts.roles.authoritative = true;
  meta_opts.dimension_fields = gene_fields;
  meta_opts.interest = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
  Peer meta(&sim, meta_opts);

  std::vector<std::unique_ptr<Peer>> groups;
  for (const auto& g : gen.FigureOneGroups()) {
    PeerOptions o;
    o.name = g.name;
    o.interest = g.area;
    o.roles.base = true;
    o.dimension_fields = gene_fields;
    auto p = std::make_unique<Peer>(&sim, o);
    p->PublishCollection("expr", g.area, gen.MakeExperiments(g, 40));
    p->AddBootstrap(meta.address());
    groups.push_back(std::move(p));
  }
  // Groups register directly with the meta server here (no index tier), so
  // the meta must keep base-entry referrals: give it the index role too.
  meta.mutable_options().roles.index = true;
  for (auto& g : groups) g->JoinNetwork();
  sim.Run();

  PeerOptions client_opts;
  client_opts.name = "lab-client";
  client_opts.dimension_fields = gene_fields;
  Peer client(&sim, client_opts);
  client.AddBootstrap(meta.address());

  auto area = *ns::InterestArea::Parse(
      "(Coelomata.Deuterostomia.Mammalia,Muscle.Cardiac)");
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(MakeAreaQueryPlan(area), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  // Only cardiac-muscle mammal experiments come back.
  for (const auto& item : outcome.items) {
    EXPECT_NE(item->ChildText("organism").find("Mammalia"),
              std::string::npos);
    EXPECT_NE(item->ChildText("celltype").find("Muscle/Cardiac"),
              std::string::npos);
  }
  EXPECT_GT(outcome.items.size(), 0u);
  // The fly group was never visited (coverage pruning).
  EXPECT_FALSE(outcome.provenance.Visited(groups[0]->address()));
  // At least one of the relevant groups was visited.
  EXPECT_TRUE(outcome.provenance.Visited(groups[1]->address()) ||
              outcome.provenance.Visited(groups[2]->address()));
}

TEST(IntegrationTest, FailedSellerYieldsPartialAnswer) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 10;
  params.items_per_seller = 6;
  params.seed = 13;
  auto net = BuildGarageSaleNetwork(&sim, params);

  auto area = *ns::InterestArea::Parse("(USA,*)");
  // Fail one seller holding USA items.
  Peer* victim = nullptr;
  for (size_t i = 0; i < net.sellers.size(); ++i) {
    if (net.seller_specs[i].cell.coord(0).segments()[0] == "USA") {
      victim = net.sellers[i];
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  sim.Fail(victim->id());

  bool done = false;
  QueryOutcome outcome;
  net.client->SubmitQuery(MakeAreaQueryPlan(area),
                          [&](const QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  // The reliability layer (DESIGN.md §9) retries around the dead seller,
  // then degrades: the client gets a *partial* answer — the items every
  // live seller contributed, marked incomplete — instead of silence.
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_FALSE(outcome.items.empty());
  EXPECT_EQ(net.client->pending_queries(), 0u);  // reaped, not leaked
  // A retry after the seller recovers completes fully.
  done = false;
  sim.Recover(victim->id());
  net.client->SubmitQuery(MakeAreaQueryPlan(area),
                          [&](const QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
}

TEST(IntegrationTest, ProvenanceRecordsVisitsInOrder) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 8;
  params.seed = 17;
  auto net = BuildGarageSaleNetwork(&sim, params);
  QueryOutcome outcome;
  bool done = false;
  net.client->SubmitQuery(
      MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA.OR,*)")),
      [&](const QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  const auto& entries = outcome.provenance.entries();
  ASSERT_GE(entries.size(), 2u);
  EXPECT_EQ(entries[0].server, net.client->address());
  // Times are non-decreasing.
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].time, entries[i - 1].time);
  }
  // Second hop is the bootstrap meta server.
  EXPECT_EQ(entries[1].server, net.client->address());  // local processing
}

TEST(IntegrationTest, SpoofingDetectedViaProvenance) {
  // §5.1: a malicious resolver binds the competitor's URN to the empty
  // set. The client retains the original plan and detects that the
  // rightful server was never visited.
  net::Simulator sim;
  workload::CdMarketGenerator gen(31);
  auto titles = gen.MakeTitles(10);

  PeerOptions honest_opts;
  honest_opts.name = "honest-seller";
  honest_opts.roles.base = true;
  Peer honest(&sim, honest_opts);
  honest.PublishNamed("urn:ForSale:T-CDs", "cds",
                      gen.MakeSellerCds(titles, "honest", 10));

  PeerOptions evil_opts;
  evil_opts.name = "evil-resolver";
  evil_opts.roles.index = true;
  evil_opts.spoof_urn_substring = "T-CDs";
  Peer evil(&sim, evil_opts);

  PeerOptions client_opts;
  client_opts.name = "client";
  client_opts.retain_original = true;
  Peer client(&sim, client_opts);
  client.AddBootstrap(evil.address());

  Plan plan(PlanNode::Display(
      "", PlanNode::Select(FieldLess("price", "100"),
                           PlanNode::UrnRef("urn:ForSale:T-CDs"))));
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(std::move(plan), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.items.empty());  // spoofed empty answer

  auto suspicious = peer::FindSuspiciousBindings(
      outcome.final_plan, "urn:ForSale:T-CDs", honest.address());
  ASSERT_EQ(suspicious.size(), 1u);
  EXPECT_EQ(suspicious[0].urn, "urn:ForSale:T-CDs");

  // Verification query sent straight to the honest seller shows count>0.
  auto verify = peer::MakeVerificationQuery("urn:ForSale:T-CDs", "");
  QueryOutcome vout;
  bool vdone = false;
  // Ask the honest server directly (bypass the evil resolver).
  PeerOptions direct_opts;
  direct_opts.name = "verifier";
  Peer verifier(&sim, direct_opts);
  verifier.AddBootstrap(honest.address());
  verifier.SubmitQuery(std::move(verify), [&](const QueryOutcome& o) {
    vout = o;
    vdone = true;
  });
  sim.Run();
  ASSERT_TRUE(vdone);
  ASSERT_TRUE(vout.complete);
  ASSERT_EQ(vout.items.size(), 1u);
  EXPECT_EQ(vout.items[0]->ChildText("count"), "10");
}

TEST(IntegrationTest, RouteAllowlistRestrictsPath) {
  // §5.2 transfer policy: the MQP may only travel to listed servers.
  net::Simulator sim;
  workload::CdMarketGenerator gen(41);
  auto titles = gen.MakeTitles(10);
  PeerOptions base;
  base.roles.base = true;
  Peer allowed(&sim, [&] {
    auto o = base;
    o.name = "allowed";
    return o;
  }());
  Peer forbidden(&sim, [&] {
    auto o = base;
    o.name = "forbidden";
    return o;
  }());
  allowed.PublishNamed("urn:X:data", "c", gen.MakeSellerCds(titles, "a", 5));
  forbidden.PublishNamed("urn:Y:data", "c",
                         gen.MakeSellerCds(titles, "f", 5));
  PeerOptions ropts;
  ropts.name = "resolver";
  ropts.roles.index = true;
  Peer resolver(&sim, ropts);
  for (Peer* p : {&allowed, &forbidden}) {
    p->AddBootstrap(resolver.address());
    p->JoinNetwork();
  }
  sim.Run();

  PeerOptions copts;
  copts.name = "client";
  Peer client(&sim, copts);
  client.AddBootstrap(resolver.address());

  // Query unions both URNs but only allows the resolver and `allowed`.
  Plan plan(PlanNode::Display(
      "", PlanNode::Union({PlanNode::UrnRef("urn:X:data"),
                           PlanNode::UrnRef("urn:Y:data")})));
  plan.policy().route_allow = {resolver.address(), allowed.address(),
                               client.address()};
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(std::move(plan), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  // The plan cannot reach `forbidden`, so it returns partial.
  EXPECT_FALSE(outcome.complete);
  EXPECT_FALSE(outcome.provenance.Visited(forbidden.address()));
}

TEST(IntegrationTest, BindAfterOrderingHonored) {
  // §5.2: "do not bind preferences until playlist is bound" — the
  // preferences URN must not resolve while the playlist URN is pending.
  net::Simulator sim;
  workload::CdMarketGenerator gen(51);
  auto titles = gen.MakeTitles(8);
  PeerOptions base;
  base.roles.base = true;
  Peer playlist_srv(&sim, [&] {
    auto o = base;
    o.name = "playlist";
    return o;
  }());
  Peer prefs_srv(&sim, [&] {
    auto o = base;
    o.name = "prefs";
    return o;
  }());
  playlist_srv.PublishNamed("urn:Music:Playlist", "c",
                            gen.MakeSellerCds(titles, "p", 6));
  prefs_srv.PublishNamed("urn:User:Preferences", "c",
                         gen.MakeSellerCds(titles, "u", 6));
  PeerOptions ropts;
  ropts.name = "resolver";
  ropts.roles.index = true;
  Peer resolver(&sim, ropts);
  for (Peer* p : {&playlist_srv, &prefs_srv}) {
    p->AddBootstrap(resolver.address());
    p->JoinNetwork();
  }
  sim.Run();
  PeerOptions copts;
  copts.name = "client";
  Peer client(&sim, copts);
  client.AddBootstrap(resolver.address());

  Plan plan(PlanNode::Display(
      "", PlanNode::Union({PlanNode::UrnRef("urn:Music:Playlist"),
                           PlanNode::UrnRef("urn:User:Preferences")})));
  plan.policy().bind_after = {{"urn:Music:Playlist",
                               "urn:User:Preferences"}};
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(std::move(plan), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), 12u);
  // The playlist server must have contributed data before the prefs
  // server appears in the provenance.
  const auto& entries = outcome.provenance.entries();
  size_t playlist_visit = entries.size(), prefs_visit = entries.size();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].server == playlist_srv.address() &&
        playlist_visit == entries.size()) {
      playlist_visit = i;
    }
    if (entries[i].server == prefs_srv.address() &&
        prefs_visit == entries.size()) {
      prefs_visit = i;
    }
  }
  EXPECT_LT(playlist_visit, prefs_visit);
}

TEST(IntegrationTest, CategoryServerAnswersStructureQueries) {
  net::Simulator sim;
  auto hierarchy = ns::MakeGarageSaleNamespace();
  PeerOptions copts;
  copts.name = "cat-server";
  copts.roles.category = true;
  Peer cat_server(&sim, copts);
  cat_server.ServeHierarchies(&hierarchy);

  PeerOptions popts;
  popts.name = "asker";
  Peer asker(&sim, popts);
  std::vector<std::string> cats;
  bool got = false;
  asker.RequestCategories(cat_server.address(), "Merchandise", "Furniture",
                          [&](const std::vector<std::string>& c) {
                            cats = c;
                            got = true;
                          });
  sim.Run();
  ASSERT_TRUE(got);
  ASSERT_EQ(cats.size(), 3u);  // Chairs, Sofas, Tables
  EXPECT_EQ(cats[0], "Furniture/Chairs");
}

}  // namespace
}  // namespace mqp
