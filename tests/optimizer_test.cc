#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "engine/operator.h"
#include "optimizer/cost.h"
#include "optimizer/evaluable.h"
#include "optimizer/policy.h"
#include "optimizer/rewrites.h"
#include "xml/parser.h"

namespace mqp::optimizer {
namespace {

using algebra::FieldLess;
using algebra::Item;
using algebra::ItemSet;
using algebra::JoinEq;
using algebra::OpType;
using algebra::PlanNode;
using algebra::PlanNodePtr;

Item ItemFrom(const std::string& text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return Item(std::move(doc).value().release());
}

ItemSet SmallData(int n) {
  ItemSet out;
  for (int i = 0; i < n; ++i) {
    out.push_back(ItemFrom("<i><k>" + std::to_string(i) + "</k><price>" +
                           std::to_string(i * 3) + "</price></i>"));
  }
  return out;
}

Locality LocalTo(const std::string& self) {
  Locality loc;
  loc.is_local_url = [self](const PlanNode& n) { return n.url() == self; };
  return loc;
}

TEST(CostTest, ConstantDataIsExact) {
  CostModel cost;
  auto node = PlanNode::XmlData(SmallData(7));
  auto est = cost.Estimate(*node);
  EXPECT_DOUBLE_EQ(est.rows, 7);
  EXPECT_GT(est.bytes, 0);
}

TEST(CostTest, AnnotationsOverrideDefaults) {
  CostModel cost;
  auto urn = PlanNode::UrnRef("urn:a:b");
  EXPECT_DOUBLE_EQ(cost.Estimate(*urn).rows, cost.params().default_leaf_rows);
  urn->annotations().cardinality = 5000;
  EXPECT_DOUBLE_EQ(cost.Estimate(*urn).rows, 5000);
}

TEST(CostTest, SelectivityByPredicateShape) {
  CostModel cost;
  auto data = PlanNode::XmlData(SmallData(100));
  auto eq = PlanNode::Select(algebra::FieldEquals("k", "5"), data);
  auto lt = PlanNode::Select(FieldLess("k", "5"), data);
  EXPECT_LT(cost.Estimate(*eq).rows, cost.Estimate(*lt).rows);
  // AND multiplies, OR adds.
  auto both = PlanNode::Select(
      algebra::Expr::And(algebra::FieldEquals("k", "5"),
                         algebra::FieldEquals("price", "15")),
      data);
  EXPECT_LT(cost.Estimate(*both).rows, cost.Estimate(*eq).rows);
}

TEST(CostTest, JoinUsesDistinctKeysAnnotation) {
  CostModel cost;
  auto l = PlanNode::UrnRef("urn:l:l");
  auto r = PlanNode::UrnRef("urn:r:r");
  l->annotations().cardinality = 1000;
  r->annotations().cardinality = 1000;
  auto join = PlanNode::Join(JoinEq("a", "b"), l, r);
  const double plain = cost.Estimate(*join).rows;
  l->annotations().distinct_keys = 1000;
  const double informed = cost.Estimate(*join).rows;
  EXPECT_LT(informed, plain);
  EXPECT_DOUBLE_EQ(informed, 1000.0);  // 1000*1000/1000
}

TEST(CostTest, TopNCapsCardinality) {
  CostModel cost;
  auto node = PlanNode::TopN(5, "k", true, PlanNode::XmlData(SmallData(50)));
  EXPECT_DOUBLE_EQ(cost.Estimate(*node).rows, 5);
}

TEST(CostTest, OrTakesCheapestAlternative) {
  CostModel cost;
  auto big = PlanNode::UrnRef("urn:big:x");
  big->annotations().cardinality = 10000;
  auto small = PlanNode::UrnRef("urn:small:x");
  small->annotations().cardinality = 10;
  auto node = PlanNode::Or({big, small});
  EXPECT_DOUBLE_EQ(cost.Estimate(*node).rows, 10);
}

TEST(EvaluableTest, ConstantDataIsEvaluable) {
  auto node = PlanNode::Select(FieldLess("price", "10"),
                               PlanNode::XmlData(SmallData(3)));
  EXPECT_TRUE(IsLocallyEvaluable(*node, Locality{}));
}

TEST(EvaluableTest, RemoteUrlBlocksEvaluation) {
  auto node = PlanNode::Select(FieldLess("price", "10"),
                               PlanNode::Url("other:9020", ""));
  EXPECT_FALSE(IsLocallyEvaluable(*node, LocalTo("self:9020")));
  EXPECT_TRUE(IsLocallyEvaluable(*node, LocalTo("other:9020")));
}

TEST(EvaluableTest, OrNeedsOnlyOneAlternative) {
  auto node = PlanNode::Or({PlanNode::UrnRef("urn:a:b"),
                            PlanNode::XmlData(SmallData(1))});
  EXPECT_TRUE(IsLocallyEvaluable(*node, Locality{}));
  auto none = PlanNode::Or({PlanNode::UrnRef("urn:a:b")});
  EXPECT_FALSE(IsLocallyEvaluable(*none, Locality{}));
}

TEST(EvaluableTest, MaximalSubplansAreMaximal) {
  // join(select(data), url-remote): the select is maximal-evaluable, the
  // join is not.
  auto sel = PlanNode::Select(FieldLess("price", "10"),
                              PlanNode::XmlData(SmallData(5)));
  auto join =
      PlanNode::Join(JoinEq("k", "k"), sel, PlanNode::Url("other:9020", ""));
  auto subs = MaximalEvaluableSubplans(join.get(), LocalTo("self:9020"));
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], sel.get());
}

TEST(EvaluableTest, BareConstantsSkipped) {
  auto data = PlanNode::XmlData(SmallData(5));
  auto subs = MaximalEvaluableSubplans(data.get(), Locality{});
  EXPECT_TRUE(subs.empty());  // nothing to do
}

TEST(EvaluableTest, DisplayNeverReturned) {
  auto plan = PlanNode::Display(
      "c:1", PlanNode::Select(FieldLess("price", "10"),
                              PlanNode::XmlData(SmallData(5))));
  auto subs = MaximalEvaluableSubplans(plan.get(), Locality{});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0]->type(), OpType::kSelect);
}

TEST(RewriteTest, PushSelectThroughUnion) {
  // Figure 4(a): select over the union produced by URN resolution.
  auto u = PlanNode::Union({PlanNode::Url("a:9020", ""),
                            PlanNode::Url("b:9020", "")});
  auto sel = PlanNode::Select(FieldLess("price", "10"), u);
  EXPECT_EQ(PushSelectThroughUnion(sel.get()), 1);
  EXPECT_EQ(sel->type(), OpType::kUnion);
  ASSERT_EQ(sel->children().size(), 2u);
  for (const auto& c : sel->children()) {
    EXPECT_EQ(c->type(), OpType::kSelect);
    EXPECT_EQ(c->child(0)->type(), OpType::kUrl);
  }
}

TEST(RewriteTest, PushSelectThroughNestedUnions) {
  auto inner = PlanNode::Union({PlanNode::Url("a:1", ""),
                                PlanNode::Url("b:1", "")});
  auto outer = PlanNode::Union({inner, PlanNode::Url("c:1", "")});
  auto sel = PlanNode::Select(FieldLess("p", "1"), outer);
  EXPECT_EQ(PushSelectThroughUnion(sel.get()), 2);
  // All leaves now sit directly under selects.
  EXPECT_EQ(sel->type(), OpType::kUnion);
}

TEST(RewriteTest, PushSelectPreservesResults) {
  ItemSet a = SmallData(10), b = SmallData(10);
  auto plain = PlanNode::Select(
      FieldLess("price", "12"),
      PlanNode::Union({PlanNode::XmlData(a), PlanNode::XmlData(b)}));
  auto pushed = plain->Clone();
  PushSelectThroughUnion(pushed.get());
  auto r1 = engine::Evaluate(*plain);
  auto r2 = engine::Evaluate(*pushed);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_TRUE((*r1)[i]->Equals(*(*r2)[i]));
  }
}

TEST(RewriteTest, OrEliminationPrefersLocal) {
  CostModel cost;
  auto remote = PlanNode::Url("other:9020", "");
  auto local = PlanNode::Url("self:9020", "");
  auto node = PlanNode::Or({remote, local});
  auto wrapper = PlanNode::Select(FieldLess("p", "1"), node);
  EXPECT_EQ(EliminateOrNodes(wrapper.get(), LocalTo("self:9020"), cost,
                             OrPreference::kPreferLocal),
            1);
  EXPECT_EQ(wrapper->child(0)->type(), OpType::kUrl);
  EXPECT_EQ(wrapper->child(0)->url(), "self:9020");
}

TEST(RewriteTest, OrEliminationPrefersCurrent) {
  CostModel cost;
  auto stale = PlanNode::Url("r:9020", "");
  stale->annotations().staleness_minutes = 30;
  auto fresh = PlanNode::Union({PlanNode::Url("r:9020", ""),
                                PlanNode::Url("s:9020", "")});
  auto node = PlanNode::Or({stale, fresh});
  auto wrapper = PlanNode::Select(FieldLess("p", "1"), node);
  EliminateOrNodes(wrapper.get(), Locality{}, cost,
                   OrPreference::kPreferCurrent);
  EXPECT_EQ(wrapper->child(0)->type(), OpType::kUnion);
}

TEST(RewriteTest, OrEliminationCheapestPicksFewestBytes) {
  CostModel cost;
  auto stale = PlanNode::Url("r:9020", "");
  stale->annotations().staleness_minutes = 30;
  stale->annotations().cardinality = 100;
  auto fresh = PlanNode::Union({PlanNode::Url("r:9020", ""),
                                PlanNode::Url("s:9020", "")});
  auto node = PlanNode::Or({stale, fresh});
  auto wrapper = PlanNode::Select(FieldLess("p", "1"), node);
  EliminateOrNodes(wrapper.get(), Locality{}, cost, OrPreference::kCheapest);
  EXPECT_EQ(wrapper->child(0)->type(), OpType::kUrl);
  EXPECT_EQ(wrapper->child(0)->annotations().staleness_minutes, 30);
}

TEST(RewriteTest, MaxStalenessRecurses) {
  auto a = PlanNode::Url("a:1", "");
  a->annotations().staleness_minutes = 10;
  auto b = PlanNode::Url("b:1", "");
  b->annotations().staleness_minutes = 45;
  auto u = PlanNode::Union({a, b});
  EXPECT_EQ(MaxStalenessMinutes(*u), 45);
}

TEST(RewriteTest, NodeProvidesFieldProbesData) {
  auto data = PlanNode::XmlData(SmallData(3));
  EXPECT_TRUE(NodeProvidesField(*data, "price"));
  EXPECT_FALSE(NodeProvidesField(*data, "missing"));
  EXPECT_FALSE(NodeProvidesField(*PlanNode::UrnRef("urn:a:b"), "price"));
  auto proj = PlanNode::Project({"k"}, data);
  EXPECT_TRUE(NodeProvidesField(*proj, "k"));
  EXPECT_FALSE(NodeProvidesField(*proj, "price"));
}

// Builds the paper's absorption scenario: (A ⋈ X) ⋈ B with A, B local
// data and X remote.
struct AbsorptionFixture {
  ItemSet a_items, b_items;
  PlanNodePtr a, b, x, plan;

  explicit AbsorptionFixture(int b_matches) {
    // A: 10 records keyed k=0..9; B: `b_matches` records matching A's keys;
    // X remote.
    for (int i = 0; i < 10; ++i) {
      a_items.push_back(ItemFrom("<i><k>" + std::to_string(i) +
                                 "</k><ax>1</ax></i>"));
    }
    for (int i = 0; i < b_matches; ++i) {
      b_items.push_back(ItemFrom("<i><bk>" + std::to_string(i) +
                                 "</bk><bx>1</bx></i>"));
    }
    a = PlanNode::XmlData(a_items);
    b = PlanNode::XmlData(b_items);
    x = PlanNode::UrnRef("urn:remote:x");
    auto inner = PlanNode::Join(JoinEq("k", "xk"), a, x);
    plan = PlanNode::Join(JoinEq("k", "bk"), inner, b);
  }
};

TEST(RewriteTest, ConsolidationReordersLocalPair) {
  AbsorptionFixture f(5);
  EXPECT_EQ(ConsolidateJoins(f.plan.get(), Locality{}), 1);
  // Now: join(join(A,B), X).
  ASSERT_EQ(f.plan->type(), OpType::kJoin);
  EXPECT_EQ(f.plan->child(1)->type(), OpType::kUrn);
  EXPECT_EQ(f.plan->child(0)->type(), OpType::kJoin);
  EXPECT_EQ(f.plan->child(0)->child(0)->type(), OpType::kXmlData);
  EXPECT_EQ(f.plan->child(0)->child(1)->type(), OpType::kXmlData);
}

TEST(RewriteTest, ConsolidationRefusesWhenFieldComesFromRemoteSide) {
  // Outer join condition reads a field only X provides: reorder unsound.
  AbsorptionFixture f(5);
  auto inner = PlanNode::Join(JoinEq("k", "xk"), f.a, f.x);
  auto plan = PlanNode::Join(JoinEq("xfield", "bk"), inner, f.b);
  EXPECT_EQ(ConsolidateJoins(plan.get(), Locality{}), 0);
}

TEST(RewriteTest, AbsorptionGateRequiresShrinkage) {
  CostModel cost;
  // |A ⋈ B| ≈ |A|*|B|*sel. With 5 B-rows: 10*5*0.05 = 2.5 <= 10 → fire.
  AbsorptionFixture small(5);
  EXPECT_EQ(ApplyAbsorption(small.plan.get(), Locality{}, cost), 1);
  // With 50 B-rows: 10*50*0.05 = 25 > 10 → don't fire.
  AbsorptionFixture big(50);
  for (int i = 0; i < 40; ++i) {
    big.b_items.push_back(ItemFrom("<i><bk>9</bk></i>"));
  }
  EXPECT_EQ(ApplyAbsorption(big.plan.get(), Locality{}, cost), 0);
}

TEST(RewriteTest, ConsolidationPreservesJoinResults) {
  // Same results evaluated before and after the rewrite once X resolves.
  AbsorptionFixture f(5);
  auto rewritten = f.plan->Clone();
  ASSERT_EQ(ConsolidateJoins(rewritten.get(), Locality{}), 1);
  // Resolve X identically in both plans.
  ItemSet x_items;
  for (int i = 0; i < 10; i += 2) {
    x_items.push_back(ItemFrom("<i><xk>" + std::to_string(i) +
                               "</xk><xx>7</xx></i>"));
  }
  auto bind = [&](PlanNodePtr& root) {
    for (const PlanNode* u : root->UrnLeaves()) {
      const_cast<PlanNode*>(u)->MorphToData(x_items);
    }
  };
  bind(f.plan);
  bind(rewritten);
  // The original joins A⋈X on k=xk then ⋈B on k=bk; the rewritten joins
  // A⋈B on k=bk then ⋈X on k=xk. Equal multisets of merged items up to
  // field order; compare counts and key sets.
  auto r1 = engine::Evaluate(*f.plan);
  auto r2 = engine::Evaluate(*rewritten);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->size(), r2->size());
  auto keys = [](const ItemSet& items) {
    std::multiset<std::string> out;
    for (const auto& i : items) out.insert(i->ChildText("k"));
    return out;
  };
  EXPECT_EQ(keys(*r1), keys(*r2));
}

TEST(PolicyTest, EvaluatesSmallResults) {
  CostModel cost;
  PolicyManager pm;
  auto sel = PlanNode::Select(FieldLess("price", "10"),
                              PlanNode::XmlData(SmallData(10)));
  auto decisions = pm.Decide({sel.get()}, cost);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].evaluate);
  EXPECT_EQ(decisions[0].reason, "evaluate");
}

TEST(PolicyTest, DefersGrowingJoins) {
  CostModel cost;
  PolicyManager pm;
  // A cross-like join whose estimate far exceeds its inputs.
  auto l = PlanNode::XmlData(SmallData(60));
  auto r = PlanNode::XmlData(SmallData(60));
  for (auto* node : {l.get(), r.get()}) {
    (void)node;
  }
  auto join = PlanNode::Join(JoinEq("k", "k"), l, r);
  // Force a pessimistic estimate via annotations.
  join->annotations();
  auto decisions = pm.Decide({join.get()}, cost);
  ASSERT_EQ(decisions.size(), 1u);
  // 60*60*0.05 = 180 rows vs 120 input rows → growth beyond 1.25×.
  EXPECT_FALSE(decisions[0].evaluate);
  EXPECT_EQ(decisions[0].reason, "defer:growth");
  // §5.1: the deferred node is annotated for downstream servers.
  EXPECT_TRUE(join->annotations().cardinality.has_value());
  EXPECT_TRUE(join->annotations().bytes.has_value());
}

TEST(PolicyTest, DefersOversizedResults) {
  CostParams params;
  CostModel cost(params);
  PolicyConfig config;
  config.max_result_bytes = 64;  // tiny cap
  PolicyManager pm(config);
  auto data = PlanNode::XmlData(SmallData(50));
  auto sel = PlanNode::Select(FieldLess("price", "1000"), data);
  auto decisions = pm.Decide({sel.get()}, cost);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].evaluate);
  EXPECT_EQ(decisions[0].reason, "defer:size");
}

TEST(PolicyTest, DefermentDisabledEvaluatesEverything) {
  CostModel cost;
  PolicyConfig config;
  config.enable_deferment = false;
  PolicyManager pm(config);
  auto join = PlanNode::Join(JoinEq("k", "k"), PlanNode::XmlData(SmallData(60)),
                             PlanNode::XmlData(SmallData(60)));
  auto decisions = pm.Decide({join.get()}, cost);
  EXPECT_TRUE(decisions[0].evaluate);
}

}  // namespace
}  // namespace mqp::optimizer
