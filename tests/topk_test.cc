// Distributed top-k suite (DESIGN.md §10): shared-order heap vs the
// stable-sort reference, bound monotonicity, bounded-prefix continuation
// reassembly, parser/codec round-trips of the unbounded-TopN
// representation and tk annotations, seeded end-to-end equivalence of
// the bounded protocol against the ship-everything reference (simulator
// and threaded runtime), counter accounting, fault-injection
// composition, and the monotonic replica-id mint.
//
// Seed counts default to a quick smoke sweep; CI's dedicated job sets
// MQP_EQUIV_SEEDS=1000 for the full suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/plan.h"
#include "algebra/plan_xml.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/field_accessor.h"
#include "engine/local_store.h"
#include "engine/operator.h"
#include "engine/topk_heap.h"
#include "net/fault_injector.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "ns/interest.h"
#include "optimizer/rewrites.h"
#include "peer/peer.h"
#include "query/parser.h"
#include "runtime/threaded_runtime.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"
#include "xml/node.h"

namespace mqp {
namespace {

using algebra::Item;
using algebra::ItemSet;
using algebra::PlanNode;
using engine::TopKBoundRef;
using engine::TopKHeap;
using engine::TopKSpec;
using peer::Peer;
using peer::PeerOptions;
using peer::QueryOutcome;
using runtime::RuntimeOptions;
using runtime::ThreadedRuntime;

size_t EquivSeeds(size_t fallback) {
  if (const char* env = std::getenv("MQP_EQUIV_SEEDS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// RAII flip of the process-global distributed-top-k knob.
class ScopedTopK {
 public:
  explicit ScopedTopK(bool on) : saved_(optimizer::use_distributed_topk()) {
    optimizer::set_use_distributed_topk(on);
  }
  ~ScopedTopK() { optimizer::set_use_distributed_topk(saved_); }

 private:
  bool saved_;
};

Item PricedItem(const std::string& price) {
  auto node = xml::Node::Element("item");
  node->AddElementWithText("price", price);
  return Item(node.release());
}

// --- heap vs stable-sort reference -------------------------------------------

/// The reference semantics: stable sort of the arrival sequence by the
/// directional numeric-aware key, truncated to k. Arrival order is
/// leaf-major (leaf 0's items first), matching how a union's branches
/// concatenate at whichever peer evaluates the consumer TopN.
struct Arrival {
  std::string key;
  uint32_t leaf;
  uint64_t idx;
  Item item;
};

std::vector<const xml::Node*> ReferenceTopK(std::vector<Arrival> arrivals,
                                            std::optional<uint64_t> k,
                                            bool ascending) {
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [&](const Arrival& a, const Arrival& b) {
                     const int cmp = CompareNumericAware(a.key, b.key);
                     return ascending ? cmp < 0 : cmp > 0;
                   });
  if (k.has_value() && arrivals.size() > *k) arrivals.resize(*k);
  std::vector<const xml::Node*> out;
  for (const auto& a : arrivals) out.push_back(a.item.get());
  return out;
}

TEST(TopKHeapTest, MatchesStableSortReferenceManySeeds) {
  const size_t seeds = EquivSeeds(200);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed);
    const size_t leaves = 1 + rng.NextBelow(4);
    std::vector<Arrival> arrivals;
    for (uint32_t leaf = 0; leaf < leaves; ++leaf) {
      const size_t n = rng.NextBelow(12);
      for (uint64_t i = 0; i < n; ++i) {
        // Small integer keys force plenty of ties; the tie-break is the
        // property under test.
        const std::string key = std::to_string(rng.NextBelow(6));
        arrivals.push_back({key, leaf, i, PricedItem(key)});
      }
    }
    std::optional<uint64_t> k;
    switch (rng.NextBelow(4)) {
      case 0: k = 0; break;
      case 1: k = 1 + rng.NextBelow(5); break;
      case 2: k = arrivals.size() + 1; break;  // larger than the input
      default: break;                          // unbounded (sort-only)
    }
    const bool asc = rng.NextBool();
    TopKHeap heap(k, asc);
    for (const auto& a : arrivals) {
      heap.Push(a.key, a.leaf, a.idx, a.item);
    }
    const ItemSet got = heap.Finish();
    const auto want = ReferenceTopK(arrivals, k, asc);
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (size_t i = 0; i < got.size(); ++i) {
      // Pointer identity: the heap must retain the exact reference items.
      EXPECT_EQ(got[i].get(), want[i]) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(TopKHeapTest, BoundTightensMonotonically) {
  const size_t seeds = EquivSeeds(100);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed);
    const bool asc = rng.NextBool();
    const uint64_t k = 1 + rng.NextBelow(6);
    TopKHeap heap(k, asc);
    TopKBoundRef prev;
    for (uint64_t i = 0; i < 64; ++i) {
      const std::string key = std::to_string(rng.NextBelow(10));
      const auto leaf = static_cast<uint32_t>(rng.NextBelow(3));
      heap.Push(key, leaf, i, PricedItem(key));
      if (!heap.full()) continue;
      const TopKBoundRef bound = heap.Bound();
      ASSERT_TRUE(bound.present) << "seed " << seed;
      if (prev.present) {
        // Each successive bound is at least as tight: a better key, or
        // the same key with a no-larger leaf.
        const int cmp = CompareNumericAware(bound.key, prev.key);
        const int dcmp = asc ? cmp : -cmp;
        EXPECT_TRUE(dcmp < 0 || (dcmp == 0 && bound.leaf <= prev.leaf))
            << "seed " << seed << " push " << i << ": bound (" << bound.key
            << "," << bound.leaf << ") loosened from (" << prev.key << ","
            << prev.leaf << ")";
      }
      prev = bound;
    }
  }
}

TEST(TopKPrunedTest, EqualKeyTieBreaksOnLeaf) {
  TopKBoundRef bound;
  bound.present = true;
  bound.key = "10";
  bound.leaf = 2;
  // A strictly better key always survives; a strictly worse one never.
  EXPECT_FALSE(engine::TopKPruned("9", 5, /*ascending=*/true, bound));
  EXPECT_TRUE(engine::TopKPruned("11", 0, /*ascending=*/true, bound));
  // Equal key: only a strictly smaller leaf can still displace the bound
  // (within the bound's own leaf, unshipped items have larger idx).
  EXPECT_FALSE(engine::TopKPruned("10", 1, /*ascending=*/true, bound));
  EXPECT_TRUE(engine::TopKPruned("10", 2, /*ascending=*/true, bound));
  EXPECT_TRUE(engine::TopKPruned("10", 3, /*ascending=*/true, bound));
  // No bound: nothing is prunable.
  EXPECT_FALSE(engine::TopKPruned("999", 9, true, TopKBoundRef{}));
}

// --- bounded-prefix continuation ---------------------------------------------

TEST(BoundedPrefixTest, ContinuationReassemblesThePrefix) {
  const size_t seeds = EquivSeeds(100);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed);
    const size_t n = 1 + rng.NextBelow(40);
    ItemSet items;
    for (size_t i = 0; i < n; ++i) {
      items.push_back(PricedItem(std::to_string(rng.NextBelow(8))));
    }
    TopKSpec spec{"price", rng.NextBool(), 1 + rng.NextBelow(10)};
    // Walk the stream with random window sizes; the concatenation must be
    // exactly the first min(k, n) positions of the score order.
    std::vector<size_t> shipped;
    uint64_t cont = 0;
    for (int round = 0; round < 200; ++round) {
      const uint64_t batch = 1 + rng.NextBelow(4);
      const auto slice = engine::BoundedPrefix(items, spec, TopKBoundRef{},
                                               /*leaf=*/0, cont, batch);
      EXPECT_EQ(slice.total, n) << "seed " << seed;
      for (size_t idx : slice.ship) shipped.push_back(idx);
      cont = slice.next_cont;
      if (!slice.more) {
        // The terminal slice credits exactly the ineligible remainder.
        EXPECT_EQ(slice.pruned, n - std::min<size_t>(n, spec.k))
            << "seed " << seed;
        break;
      }
      EXPECT_FALSE(slice.next_key.empty()) << "seed " << seed;
    }
    const auto reference = engine::BoundedPrefix(
        items, spec, TopKBoundRef{}, 0, 0, /*batch=*/0);
    EXPECT_FALSE(reference.more);
    ASSERT_EQ(shipped, reference.ship) << "seed " << seed;
    EXPECT_EQ(shipped.size(), std::min<size_t>(n, spec.k)) << "seed " << seed;
    // Score order: each shipped key is no worse than its successor.
    engine::FieldAccessor price("price");
    for (size_t i = 0; i + 1 < shipped.size(); ++i) {
      const std::string a(price.Eval(*items[shipped[i]]).value_or(""));
      const std::string b(price.Eval(*items[shipped[i + 1]]).value_or(""));
      const int cmp = CompareNumericAware(a, b);
      EXPECT_TRUE(spec.ascending ? cmp <= 0 : cmp >= 0) << "seed " << seed;
    }
  }
}

TEST(BoundedPrefixTest, BoundCutsTheStream) {
  // Ten rows priced 0..9 ascending; a bound at key "4" from a smaller
  // leaf admits strictly-better keys only (equal key loses to leaf 0).
  ItemSet items;
  for (int i = 0; i < 10; ++i) items.push_back(PricedItem(std::to_string(i)));
  TopKSpec spec{"price", true, 10};
  TopKBoundRef bound;
  bound.present = true;
  bound.key = "4";
  bound.leaf = 0;
  const auto slice =
      engine::BoundedPrefix(items, spec, bound, /*leaf=*/1, 0, 0);
  EXPECT_EQ(slice.ship.size(), 4u);  // prices 0,1,2,3
  EXPECT_FALSE(slice.more);
  EXPECT_EQ(slice.pruned, 6u);
}

// --- parser & codec round-trips ----------------------------------------------

TEST(TopKParserTest, UnboundedOrderByRoundTrips) {
  auto plan = query::Parse("select * from urn:X:Y order by price desc");
  ASSERT_TRUE(plan.ok());
  const PlanNode* topn = plan->root().get();
  ASSERT_EQ(topn->type(), algebra::OpType::kTopN);
  EXPECT_FALSE(topn->has_limit());
  EXPECT_EQ(topn->order_field(), "price");
  EXPECT_FALSE(topn->ascending());
  // Wire round-trip preserves unboundedness (no n attribute at all —
  // distinct from every finite limit, including 0).
  const std::string bytes = algebra::SerializePlan(*plan);
  EXPECT_EQ(bytes.find(" n="), std::string::npos);
  auto back = algebra::ParsePlan(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->root()->has_limit());
  EXPECT_TRUE(back->root()->Equals(*plan->root()));
}

TEST(TopKParserTest, BoundedLimitStaysDistinctFromUnbounded) {
  auto bounded = query::Parse("select * from urn:X:Y order by price limit 5");
  auto unbounded = query::Parse("select * from urn:X:Y order by price");
  ASSERT_TRUE(bounded.ok());
  ASSERT_TRUE(unbounded.ok());
  EXPECT_TRUE(bounded->root()->has_limit());
  EXPECT_EQ(bounded->root()->limit(), 5u);
  EXPECT_FALSE(bounded->root()->Equals(*unbounded->root()));
  // An unbounded TopN still evaluates as a full sort, not an empty set.
  engine::LocalStore store;
  ItemSet data;
  for (int i = 5; i > 0; --i) data.push_back(PricedItem(std::to_string(i)));
  auto sorted = engine::Evaluate(
      *PlanNode::TopN(std::nullopt, "price", true, PlanNode::XmlData(data)),
      &store);
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), 5u);
  EXPECT_EQ((*sorted)[0]->ChildText("price"), "1");
  EXPECT_EQ((*sorted)[4]->ChildText("price"), "5");
}

TEST(TopKCodecTest, AnnotationRoundTripsOnBothCodecs) {
  algebra::TopKBound tk;
  tk.order_field = "price";
  tk.ascending = false;
  tk.k = 7;
  tk.batch = 3;
  tk.cont = 12;
  tk.leaf = 2;
  tk.has_bound = true;
  tk.bound_key = "19.95";
  tk.bound_leaf = 1;
  auto node = PlanNode::Url("10.0.0.9:9020", "/data[id=c0]");
  node->annotations().topk = tk;
  algebra::Plan plan(PlanNode::Display("10.0.0.1:9020", std::move(node)));
  std::string bytes[2];
  for (int streaming = 0; streaming < 2; ++streaming) {
    const bool saved = algebra::use_streaming_plan_codec();
    algebra::set_use_streaming_plan_codec(streaming == 1);
    bytes[streaming] = algebra::SerializePlan(plan);
    auto back = algebra::ParsePlan(bytes[streaming]);
    algebra::set_use_streaming_plan_codec(saved);
    ASSERT_TRUE(back.ok());
    const auto& got =
        std::as_const(*back->root()->child(0)).annotations().topk;
    ASSERT_TRUE(got.has_value()) << "streaming=" << streaming;
    EXPECT_EQ(*got, tk) << "streaming=" << streaming;
  }
  EXPECT_EQ(bytes[0], bytes[1]);  // byte-identical across codecs
}

// --- end-to-end equivalence ---------------------------------------------------

/// What the bounded protocol must reproduce exactly: completeness and
/// the *ordered* result rows (a top-k answer is a ranking, so order is
/// part of the contract).
struct TopKFp {
  bool returned = false;
  bool complete = false;
  std::vector<std::string> rows;
  bool operator==(const TopKFp&) const = default;
};

/// The wire-visible side effects of one run.
struct WireObs {
  uint64_t query_bytes = 0;  ///< bytes on the wire after network build
  uint64_t topk_batches = 0;
  uint64_t topk_rows_pruned = 0;
  uint64_t topk_bytes_saved = 0;
  uint64_t topk_early_terminations = 0;
  uint64_t reply_decode_failures = 0;
  uint64_t unmatched_replies = 0;
};

TopKFp RunTopKQuery(net::Transport* transport, uint64_t seed, uint64_t k,
                    bool ascending, bool distributed, size_t sellers,
                    size_t items_per_seller, WireObs* obs = nullptr,
                    bool with_predicate = false) {
  const ScopedTopK knob(distributed);
  workload::GarageSaleNetworkParams params;
  params.num_sellers = sellers;
  params.items_per_seller = items_per_seller;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(transport, params);
  const uint64_t bytes_after_build = transport->stats().bytes;
  TopKFp fp;
  const auto area = *ns::InterestArea::Parse("(USA,*)");
  // A predicate turns the remote branches into select(url) sub-plans, so
  // the session uses bounded *subqueries* instead of bounded fetches.
  algebra::ExprPtr pred =
      with_predicate ? algebra::FieldLess("price", "100") : nullptr;
  net.client->SubmitQuery(
      workload::MakeTopKQueryPlan(area, "price", ascending, k,
                                  std::move(pred)),
      [&](const QueryOutcome& o) {
        fp.returned = true;
        fp.complete = o.complete;
        for (const auto& item : o.items) {
          fp.rows.push_back(item->ChildText("name") + "|" +
                            item->ChildText("price"));
        }
      });
  transport->Run();
  if (obs != nullptr) {
    const net::NetStats& s = transport->stats();
    obs->query_bytes = s.bytes - bytes_after_build;
    obs->topk_batches = s.topk_batches;
    obs->topk_rows_pruned = s.topk_rows_pruned;
    obs->topk_bytes_saved = s.topk_bytes_saved;
    obs->topk_early_terminations = s.topk_early_terminations;
    obs->reply_decode_failures = s.reply_decode_failures;
    obs->unmatched_replies = s.unmatched_replies;
  }
  return fp;
}

// The acceptance sweep: across seeds, random k (including 1 and
// beyond-collection), both directions, the bounded protocol returns the
// bit-identical ranking the ship-everything reference returns — and the
// happy path never mis-correlates or fails to decode a reply.
TEST(DistributedTopK, MatchesUnboundedReferenceManySeeds) {
  const size_t seeds = EquivSeeds(60);
  uint64_t total_batches = 0;
  uint64_t total_pruned = 0;
  uint64_t total_early = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 977 + 11);
    const uint64_t ks[] = {1, 2, 3, 5, 10, 100};
    const uint64_t k = ks[rng.NextBelow(6)];
    const bool asc = rng.NextBool();
    const size_t sellers = 3 + rng.NextBelow(6);
    const bool with_pred = rng.NextBool(0.4);  // bounded subqueries too
    net::Simulator ref_sim;
    const TopKFp reference =
        RunTopKQuery(&ref_sim, seed, k, asc,
                     /*distributed=*/false, sellers, 8, nullptr, with_pred);
    ASSERT_TRUE(reference.returned) << "seed " << seed;
    ASSERT_TRUE(reference.complete) << "seed " << seed;
    // The ablated reference must never touch the top-k machinery.
    EXPECT_EQ(ref_sim.stats().topk_batches, 0u) << "seed " << seed;
    EXPECT_EQ(ref_sim.stats().topk_rows_pruned, 0u) << "seed " << seed;
    EXPECT_EQ(ref_sim.stats().topk_bytes_saved, 0u) << "seed " << seed;
    EXPECT_EQ(ref_sim.stats().topk_early_terminations, 0u) << "seed " << seed;

    net::Simulator sim;
    WireObs obs;
    const TopKFp got = RunTopKQuery(&sim, seed, k, asc, /*distributed=*/true,
                                    sellers, 8, &obs, with_pred);
    ASSERT_EQ(reference, got) << "seed " << seed << " k " << k;
    EXPECT_EQ(obs.reply_decode_failures, 0u) << "seed " << seed;
    EXPECT_EQ(obs.unmatched_replies, 0u) << "seed " << seed;
    total_batches += obs.topk_batches;
    total_pruned += obs.topk_rows_pruned;
    total_early += obs.topk_early_terminations;
  }
  // The sweep must actually exercise the protocol: bounded batches flow,
  // rows provably out of the top k stay home, and at least one source
  // somewhere is cut off early by the threshold test.
  EXPECT_GT(total_batches, 0u);
  EXPECT_GT(total_pruned, 0u);
  EXPECT_GT(total_early, 0u);
}

// Simulator and threaded runtime return the same ranking with the
// protocol on — arrival order of concurrent batches must not leak into
// the result (the shared (key, leaf, idx) order is arrival-free).
TEST(DistributedTopK, ThreadedRuntimeMatchesSimulatorManySeeds) {
  const size_t seeds = EquivSeeds(20);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    const uint64_t k = 1 + (seed % 7);
    const bool asc = seed % 2 == 0;
    net::Simulator sim;
    const TopKFp reference =
        RunTopKQuery(&sim, seed, k, asc, /*distributed=*/true, 6, 6);
    ASSERT_TRUE(reference.returned) << "seed " << seed;
    ASSERT_TRUE(reference.complete) << "seed " << seed;
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      ThreadedRuntime rt(RuntimeOptions{.num_threads = threads});
      const TopKFp got =
          RunTopKQuery(&rt, seed, k, asc, /*distributed=*/true, 6, 6);
      ASSERT_EQ(reference, got)
          << "seed " << seed << " threads " << threads;
      rt.Shutdown();
    }
  }
}

// k=10 over fat collections: the bounded protocol must put dramatically
// fewer bytes on the wire during the query phase than the reference,
// while returning the identical ranking.
TEST(DistributedTopK, ShipsFarFewerBytesThanReference) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    net::Simulator ref_sim;
    WireObs ref_obs;
    const TopKFp reference =
        RunTopKQuery(&ref_sim, seed, /*k=*/10, /*ascending=*/true,
                     /*distributed=*/false, 5, 80, &ref_obs);
    net::Simulator sim;
    WireObs obs;
    const TopKFp got = RunTopKQuery(&sim, seed, 10, true,
                                    /*distributed=*/true, 5, 80, &obs);
    ASSERT_EQ(reference, got) << "seed " << seed;
    ASSERT_TRUE(got.complete) << "seed " << seed;
    EXPECT_LT(obs.query_bytes, ref_obs.query_bytes / 2) << "seed " << seed;
    EXPECT_GT(obs.topk_rows_pruned, 0u) << "seed " << seed;
    EXPECT_GT(obs.topk_bytes_saved, 0u) << "seed " << seed;
  }
}

// PR 8 composition: under drop/dup/delay faults with client retries on,
// bounded fetches are idempotent per continuation token — whenever the
// query completes, the ranking equals the clean ablated reference, and
// the same seed reproduces the same outcome.
TEST(DistributedTopK, ComposesWithFaultInjectionAndRetries) {
  const size_t seeds = EquivSeeds(15);
  size_t completed = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    net::Simulator ref_sim;
    const TopKFp reference = RunTopKQuery(&ref_sim, seed, /*k=*/5,
                                          /*ascending=*/true,
                                          /*distributed=*/false, 6, 6);
    TopKFp runs[2];
    for (int rep = 0; rep < 2; ++rep) {
      const ScopedTopK knob(true);
      net::Simulator sim;
      net::FaultPlan fault;
      fault.seed = seed;
      fault.spec.drop_rate = 0.03;
      fault.spec.dup_rate = 0.02;
      fault.spec.delay_rate = 0.02;
      net::FaultInjector fi(&sim, fault);
      workload::GarageSaleNetworkParams params;
      params.num_sellers = 6;
      params.items_per_seller = 6;
      params.seed = seed;
      auto net = workload::BuildGarageSaleNetwork(&fi, params);
      fi.Arm();
      TopKFp& fp = runs[rep];
      const auto area = *ns::InterestArea::Parse("(USA,*)");
      net.client->SubmitQuery(
          workload::MakeTopKQueryPlan(area, "price", true, 5),
          [&](const QueryOutcome& o) {
            fp.returned = true;
            fp.complete = o.complete;
            for (const auto& item : o.items) {
              fp.rows.push_back(item->ChildText("name") + "|" +
                                item->ChildText("price"));
            }
          });
      fi.Run();
      EXPECT_TRUE(fp.returned) << "seed " << seed;
      if (fp.complete) {
        EXPECT_EQ(fp.rows, reference.rows) << "seed " << seed;
      }
    }
    ASSERT_EQ(runs[0], runs[1]) << "seed " << seed;  // fault determinism
    if (runs[0].complete) ++completed;
  }
  // The retry layer must actually rescue most faulted runs.
  EXPECT_GT(completed, seeds / 2);
}

// --- replica-id mint (DESIGN.md §4.3 pulls) ----------------------------------

// Replica ids come from a monotonic mint: after a drop, the next pull
// must not reuse the freed id and silently overwrite a live collection.
TEST(ReplicaMintTest, DropThenPullNeverReusesIds) {
  net::Simulator sim;
  PeerOptions so;
  so.name = "src";
  so.roles.base = true;
  Peer source(&sim, so);
  const auto area = *ns::InterestArea::Parse("(USA.OR,Music)");
  ItemSet items;
  for (int i = 0; i < 3; ++i) items.push_back(PricedItem(std::to_string(i)));
  source.PublishCollection("c0", area, items);

  PeerOptions io;
  io.name = "idx";
  io.roles.index = true;
  io.roles.authoritative = true;
  io.interest = *ns::InterestArea::Parse("(USA.OR,*)");
  Peer idx(&sim, io);
  source.AddBootstrap(idx.address());
  source.JoinNetwork();
  sim.Run();

  auto has_collection = [&](const std::string& id) {
    const auto ids = idx.store().CollectionIds();
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  };

  idx.PullIndexedData(/*delay_minutes=*/10);
  sim.Run();
  ASSERT_EQ(idx.replica_count(), 1u);
  ASSERT_TRUE(has_collection("replica-0"));
  ASSERT_EQ(idx.store().ItemsOf("replica-0").size(), 3u);

  idx.DropReplica("replica-0");
  EXPECT_EQ(idx.replica_count(), 0u);
  EXPECT_FALSE(has_collection("replica-0"));

  idx.PullIndexedData(10);
  sim.Run();
  ASSERT_EQ(idx.replica_count(), 1u);
  // The mint moved on: the new replica is replica-1, and replica-0 does
  // not silently come back (a size_t-based mint would reuse it and
  // overwrite whatever claimed the id in between).
  EXPECT_TRUE(has_collection("replica-1"));
  EXPECT_FALSE(has_collection("replica-0"));
  EXPECT_EQ(idx.store().ItemsOf("replica-1").size(), 3u);
}

}  // namespace
}  // namespace mqp
