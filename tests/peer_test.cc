// Peer-level unit tests: registration payloads, the pull process (§3.3),
// plan policies on the wire, counters, and verification utilities.
#include <gtest/gtest.h>

#include "net/simulator.h"
#include "peer/peer.h"
#include "peer/verification.h"
#include "workload/cd_market.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"
#include "xml/parser.h"

namespace mqp::peer {
namespace {

using algebra::Plan;
using algebra::PlanNode;

algebra::ItemSet SomeItems(size_t n, uint64_t seed) {
  workload::GarageSaleGenerator gen(seed);
  auto sellers = gen.MakeSellers(1);
  return gen.MakeItems(sellers[0], n);
}

TEST(PeerTest, AddressAndNameDefaults) {
  net::Simulator sim;
  Peer a(&sim, PeerOptions{});
  Peer b(&sim, PeerOptions{});
  EXPECT_NE(a.address(), b.address());
  EXPECT_EQ(a.options().name, "peer-0");
  EXPECT_EQ(b.options().name, "peer-1");
}

TEST(PeerTest, PublishCollectionIsLocallyResolvable) {
  net::Simulator sim;
  PeerOptions o;
  o.roles.base = true;
  Peer p(&sim, o);
  auto area = ns::MakeArea({"USA/OR/Portland", "Music/CDs"});
  p.PublishCollection("c0", area, SomeItems(5, 1));
  auto binding = p.catalog().Resolve(ns::AreaToUrn(area).ToString());
  ASSERT_TRUE(binding.ok());
  ASSERT_FALSE(binding->empty());
  EXPECT_EQ(binding->alternatives[0].sources[0].server, p.address());
}

TEST(PeerTest, RegisterPayloadListsCollectionsNamedAndStatements) {
  net::Simulator sim;
  PeerOptions o;
  o.name = "s";
  o.roles.base = true;
  Peer p(&sim, o);
  p.PublishCollection("c0", ns::MakeArea({"USA/OR", "Music"}),
                      SomeItems(2, 2));
  p.PublishNamed("urn:X:Y", "c1", SomeItems(1, 3));
  auto st = catalog::IntensionalStatement::Parse(
      "base[(USA.OR,Music)]@A = base[(USA.OR,Music)]@B");
  p.AddOwnStatement(*st);

  // Register against an index server and inspect what it learned.
  PeerOptions io;
  io.name = "idx";
  io.roles.index = true;
  Peer idx(&sim, io);
  p.AddBootstrap(idx.address());
  p.JoinNetwork();
  sim.Run();
  EXPECT_EQ(idx.counters().registrations_received, 1u);
  // Two entries: collection c0 and the named collection's holder appears
  // via <named>, stored as a mapping.
  bool has_collection = false;
  for (const auto& e : idx.catalog().entries()) {
    if (e.server == p.address() && !e.xpath.empty()) has_collection = true;
  }
  EXPECT_TRUE(has_collection);
  auto named = idx.catalog().Resolve("urn:X:Y");
  ASSERT_TRUE(named.ok());
  EXPECT_FALSE(named->empty());
  EXPECT_EQ(idx.catalog().statements().size(), 1u);
}

TEST(PeerTest, RegistrationIgnoredByNonIndexPeers) {
  net::Simulator sim;
  PeerOptions o;
  o.roles.base = true;
  Peer base_only(&sim, o);
  Peer sender(&sim, o);
  sender.AddBootstrap(base_only.address());
  sender.PublishCollection("c", ns::MakeArea({"USA", "Music"}),
                           SomeItems(1, 4));
  sender.JoinNetwork();
  sim.Run();
  EXPECT_EQ(base_only.counters().registrations_received, 1u);
  EXPECT_TRUE(base_only.catalog().entries().size() <= 1);  // only its own
}

TEST(PeerTest, PullProcessCreatesReplicaAndStatement) {
  net::Simulator sim;
  PeerOptions so;
  so.name = "src";
  so.roles.base = true;
  Peer source(&sim, so);
  auto area = ns::MakeArea({"USA/OR/Portland", "Books/Fiction"});
  source.PublishCollection("c0", area, SomeItems(7, 5));

  PeerOptions io;
  io.name = "idx";
  io.roles.index = true;
  io.roles.authoritative = true;
  io.interest = ns::MakeArea({"USA/OR", "*"});
  Peer idx(&sim, io);
  source.AddBootstrap(idx.address());
  source.JoinNetwork();
  sim.Run();

  ASSERT_EQ(idx.replica_count(), 0u);
  idx.PullIndexedData(/*delay_minutes=*/15);
  sim.Run();
  EXPECT_EQ(idx.replica_count(), 1u);
  EXPECT_EQ(idx.store().TotalItems(), 7u);
  // The replica is catalogued with the delay and the containment
  // statement was asserted.
  bool replica_entry = false;
  for (const auto& e : idx.catalog().entries()) {
    if (e.server == idx.address() && e.delay_minutes == 15) {
      replica_entry = true;
    }
  }
  EXPECT_TRUE(replica_entry);
  ASSERT_EQ(idx.catalog().statements().size(), 1u);
  const auto& st = idx.catalog().statements()[0];
  EXPECT_EQ(st.relation, catalog::IntensionRelation::kContains);
  EXPECT_EQ(st.lhs.server, idx.address());
  EXPECT_EQ(st.rhs[0].server, source.address());
  EXPECT_EQ(st.rhs[0].delay_minutes, 15);
}

TEST(PeerTest, PulledReplicaAnswersQueriesLocally) {
  net::Simulator sim;
  PeerOptions so;
  so.name = "src";
  so.roles.base = true;
  Peer source(&sim, so);
  auto area = ns::MakeArea({"USA/WA/Seattle", "Clothing/Shoes"});
  source.PublishCollection("c0", area, SomeItems(6, 6));

  PeerOptions io;
  io.name = "idx";
  io.roles.index = true;
  io.roles.authoritative = true;
  io.interest = ns::MakeArea({"USA/WA", "*"});
  Peer idx(&sim, io);
  source.AddBootstrap(idx.address());
  source.JoinNetwork();
  sim.Run();
  idx.PullIndexedData(30);
  sim.Run();
  // Kill the source: the replica must still answer (stale but available —
  // §4.2 "R may be unavailable at some point, and we can use S for a
  // partial answer", mirrored).
  sim.Fail(source.id());

  PeerOptions co;
  co.name = "client";
  Peer client(&sim, co);
  client.AddBootstrap(idx.address());
  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(
      workload::MakeAreaQueryPlan(area),
      [&](const QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), 6u);
  // The staleness bound of the replica shows in the provenance.
  EXPECT_EQ(outcome.provenance.MaxStalenessMinutes(), 30);
}

TEST(PeerTest, PlanPolicyRoundTripsOnTheWire) {
  Plan plan(PlanNode::Display("t:1", PlanNode::UrnRef("urn:a:b")));
  plan.policy().route_allow = {"10.0.0.1:9020", "10.0.0.2:9020"};
  plan.policy().bind_after = {{"urn:a:b", "urn:c:d"}};
  plan.policy().time_budget_seconds = 30;
  plan.policy().preference = algebra::AnswerPreference::kCurrent;
  plan.set_query_id("q-77");
  plan.set_submitted_at(12.5);
  auto back = algebra::ParsePlan(algebra::SerializePlan(plan));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->policy(), plan.policy());
  EXPECT_EQ(back->query_id(), "q-77");
  EXPECT_DOUBLE_EQ(back->submitted_at(), 12.5);
}

TEST(PeerTest, CountersTrackWork) {
  net::Simulator sim;
  workload::CdMarketGenerator gen(9);
  auto titles = gen.MakeTitles(10);
  PeerOptions so;
  so.name = "seller";
  so.roles.base = true;
  Peer seller(&sim, so);
  seller.PublishNamed("urn:S:CDs", "c", gen.MakeSellerCds(titles, "s", 10));
  PeerOptions co;
  co.name = "client";
  Peer client(&sim, co);
  client.catalog().AddNamedReferral("urn:S:CDs", seller.address());

  bool done = false;
  client.SubmitQuery(
      Plan(PlanNode::Display(
          "", PlanNode::Select(algebra::FieldLess("price", "100"),
                               PlanNode::UrnRef("urn:S:CDs")))),
      [&](const QueryOutcome&) { done = true; });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(client.counters().urns_bound, 1u);     // bound the referral
  EXPECT_EQ(client.counters().plans_forwarded, 1u);
  EXPECT_EQ(seller.counters().plans_received, 1u);
  EXPECT_EQ(seller.counters().urns_bound, 1u);     // referral → own URL
  EXPECT_EQ(seller.counters().subplans_evaluated, 1u);
  EXPECT_EQ(seller.counters().results_delivered, 1u);
}

TEST(PeerTest, MaxHopsBoundsRouting) {
  net::Simulator sim;
  // Two peers that know only each other; an unresolvable URN ping-pongs
  // until max_hops cuts it off.
  PeerOptions o1;
  o1.name = "a";
  o1.max_hops = 6;
  Peer a(&sim, o1);
  PeerOptions o2;
  o2.name = "b";
  o2.max_hops = 6;
  Peer b(&sim, o2);
  a.AddBootstrap(b.address());
  b.AddBootstrap(a.address());

  QueryOutcome outcome;
  bool done = false;
  a.SubmitQuery(Plan(PlanNode::Display(
                    "", PlanNode::UrnRef("urn:Nowhere:ToBeFound"))),
                [&](const QueryOutcome& o) {
                  outcome = o;
                  done = true;
                });
  sim.Run();
  ASSERT_TRUE(done);  // came back as a partial answer, not an infinite loop
  EXPECT_FALSE(outcome.complete);
  EXPECT_LE(outcome.provenance.size(), 8u);
}

TEST(PeerTest, DifferenceSplitSubtractsEnRoute) {
  // E − (A ∪ B) with A local to the first peer: the difference with A is
  // applied before the plan travels to B's host (Example 3's rewrite).
  net::Simulator sim;
  workload::CdMarketGenerator gen(17);
  auto titles = gen.MakeTitles(6);
  auto everything = gen.MakeSellerCds(titles, "x", 12);
  algebra::ItemSet a_items(everything.begin(), everything.begin() + 4);
  algebra::ItemSet b_items(everything.begin() + 4, everything.begin() + 7);

  PeerOptions po;
  po.roles.base = true;
  Peer pa(&sim, [&] {
    auto o = po;
    o.name = "pa";
    return o;
  }());
  Peer pb(&sim, [&] {
    auto o = po;
    o.name = "pb";
    return o;
  }());
  pa.PublishNamed("urn:A:data", "a", a_items);
  pb.PublishNamed("urn:B:data", "b", b_items);
  pa.catalog().AddNamedReferral("urn:B:data", pb.address());

  Plan plan(PlanNode::Display(
      "", PlanNode::Difference(
              PlanNode::XmlData(everything),
              PlanNode::Union({PlanNode::UrnRef("urn:A:data"),
                               PlanNode::UrnRef("urn:B:data")}))));
  QueryOutcome outcome;
  bool done = false;
  pa.SubmitQuery(std::move(plan), [&](const QueryOutcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), 12u - 4u - 3u);
}

TEST(PeerTest, HistogramAnnotationsTravelWithDeferredPlans) {
  // A peer configured with histogram_fields attaches distributions to its
  // local collections (§5.1); a downstream peer's cost model can then see
  // them. We check the annotation appears on the wire.
  net::Simulator sim;
  PeerOptions so;
  so.name = "seller";
  so.roles.base = true;
  so.histogram_fields = {"price"};
  Peer seller(&sim, so);
  workload::CdMarketGenerator gen(33);
  auto titles = gen.MakeTitles(10);
  seller.PublishNamed("urn:S:CDs", "c", gen.MakeSellerCds(titles, "s", 50));

  // Capture the plan after the seller annotates + evaluates. Easiest
  // observation point: resolve locally and inspect.
  algebra::Plan plan(PlanNode::Display(
      "10.0.0.9:9020", PlanNode::UrnRef("urn:S:CDs")));
  // Simulate the annotate step by submitting a query that the seller
  // cannot finish (remote target) — the result message carries the data;
  // instead probe AnnotateLocalUrls indirectly via the catalog binding.
  auto binding = seller.catalog().Resolve("urn:S:CDs");
  ASSERT_TRUE(binding.ok());
  auto fragment = catalog::BindingToPlan(*binding);
  algebra::Plan probe(fragment);
  // Build histogram as the peer would.
  auto items = seller.store().Fetch(seller.address(), "/data[id=c]");
  ASSERT_TRUE(items.ok());
  auto h = algebra::FieldHistogram::Build(*items, "price");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->total, 50u);
  // And the cost model consumes it.
  optimizer::CostModel cost;
  auto urn = PlanNode::UrnRef("urn:S:CDs");
  urn->annotations().cardinality = 50;
  urn->annotations().histograms.push_back(*h);
  auto cheap = PlanNode::Select(algebra::FieldLess("price", "5"), urn);
  // Prices are uniform in [4, 26): under ~5% fall below 5 — far from the
  // fixed 33% heuristic.
  EXPECT_LT(cost.Estimate(*cheap).rows, 10);
  (void)plan;
}

TEST(VerificationTest, CleanQueryRaisesNoSuspicion) {
  net::Simulator sim;
  workload::CdMarketGenerator gen(19);
  auto titles = gen.MakeTitles(5);
  PeerOptions so;
  so.name = "honest";
  so.roles.base = true;
  Peer honest(&sim, so);
  honest.PublishNamed("urn:H:CDs", "c", gen.MakeSellerCds(titles, "h", 5));
  PeerOptions co;
  co.name = "client";
  co.retain_original = true;
  Peer client(&sim, co);
  client.catalog().AddNamedReferral("urn:H:CDs", honest.address());

  QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(
      Plan(PlanNode::Display("", PlanNode::UrnRef("urn:H:CDs"))),
      [&](const QueryOutcome& o) {
        outcome = o;
        done = true;
      });
  sim.Run();
  ASSERT_TRUE(done);
  auto sus = FindSuspiciousBindings(outcome.final_plan, "urn:H:CDs",
                                    honest.address());
  EXPECT_TRUE(sus.empty());
}

TEST(VerificationTest, UrnAbsentFromOriginalNotReported) {
  Plan plan(PlanNode::Display("", PlanNode::XmlData({})));
  plan.set_original(PlanNode::UrnRef("urn:other:thing"));
  auto sus = FindSuspiciousBindings(plan, "urn:not:there", "srv");
  EXPECT_TRUE(sus.empty());
}

TEST(VerificationTest, VerificationQueryShape) {
  auto plan = MakeVerificationQuery("urn:T:data", "client:1");
  EXPECT_EQ(plan.root()->type(), algebra::OpType::kDisplay);
  EXPECT_EQ(plan.root()->child(0)->type(), algebra::OpType::kAggregate);
  EXPECT_EQ(plan.root()->child(0)->child(0)->urn(), "urn:T:data");
}

}  // namespace
}  // namespace mqp::peer
