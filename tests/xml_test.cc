#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mqp::xml {
namespace {

TEST(NodeTest, ElementConstruction) {
  auto n = Node::Element("item");
  EXPECT_TRUE(n->is_element());
  EXPECT_EQ(n->name(), "item");
  EXPECT_TRUE(n->children().empty());
}

TEST(NodeTest, AttributesPreserveOrderAndReplace) {
  auto n = Node::Element("e");
  n->SetAttr("b", "1");
  n->SetAttr("a", "2");
  n->SetAttr("b", "3");
  ASSERT_EQ(n->attrs().size(), 2u);
  EXPECT_EQ(n->attrs()[0].first, "b");
  EXPECT_EQ(*n->Attr("b"), "3");
  EXPECT_EQ(*n->Attr("a"), "2");
  EXPECT_FALSE(n->Attr("c").has_value());
  EXPECT_EQ(n->AttrOr("c", "dflt"), "dflt");
}

TEST(NodeTest, ChildNavigation) {
  auto n = Node::Element("items");
  n->AddElementWithText("a", "1");
  n->AddElementWithText("b", "2");
  n->AddElementWithText("a", "3");
  EXPECT_EQ(n->ElementCount(), 3u);
  EXPECT_EQ(n->Child("a")->InnerText(), "1");
  EXPECT_EQ(n->Children("a").size(), 2u);
  EXPECT_EQ(n->Children("*").size(), 3u);
  EXPECT_EQ(n->ChildText("b"), "2");
  EXPECT_EQ(n->ChildText("missing"), "");
}

TEST(NodeTest, InnerTextConcatenatesDescendants) {
  auto n = Node::Element("p");
  n->AddText("hello ");
  n->AddElementWithText("b", "world");
  EXPECT_EQ(n->InnerText(), "hello world");
}

TEST(NodeTest, CloneIsDeepAndEqual) {
  auto n = Node::Element("root");
  n->SetAttr("k", "v");
  n->AddElementWithText("c", "text");
  auto clone = n->Clone();
  EXPECT_TRUE(n->Equals(*clone));
  clone->Child("c")->mutable_children()[0]->set_text("changed");
  EXPECT_FALSE(n->Equals(*clone));
  EXPECT_EQ(n->ChildText("c"), "text");
}

TEST(NodeTest, RemoveAndReplaceChild) {
  auto n = Node::Element("root");
  n->AddElement("a");
  n->AddElement("b");
  auto removed = n->RemoveChild(0);
  EXPECT_EQ(removed->name(), "a");
  EXPECT_EQ(n->children().size(), 1u);
  auto old = n->ReplaceChild(0, Node::Element("c"));
  EXPECT_EQ(old->name(), "b");
  EXPECT_EQ(n->children()[0]->name(), "c");
}

TEST(ParserTest, SimpleDocument) {
  auto doc = Parse("<root><child attr=\"x\">text</child></root>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->name(), "root");
  const Node* child = (*doc)->Child("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->AttrOr("attr", ""), "x");
  EXPECT_EQ(child->InnerText(), "text");
}

TEST(ParserTest, SelfClosingAndMixedQuotes) {
  auto doc = Parse("<a x='1' y=\"2\"><b/><c/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->ElementCount(), 2u);
  EXPECT_EQ((*doc)->AttrOr("x", ""), "1");
  EXPECT_EQ((*doc)->AttrOr("y", ""), "2");
}

TEST(ParserTest, EntitiesDecoded) {
  auto doc = Parse("<t a=\"&lt;&amp;&gt;&quot;&apos;\">&lt;x&gt; &#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->AttrOr("a", ""), "<&>\"'");
  EXPECT_EQ((*doc)->InnerText(), "<x> AB");
}

TEST(ParserTest, CommentsPIsDoctypeSkipped) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE root [<!ENTITY x \"y\">]>"
      "<!-- hi --><root><!-- inner --><a/><?pi data?></root>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->ElementCount(), 1u);
}

TEST(ParserTest, CdataPreserved) {
  auto doc = Parse("<t><![CDATA[a < b & c]]></t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->InnerText(), "a < b & c");
}

TEST(ParserTest, NestedSameName) {
  auto doc = Parse("<d><d><d>deep</d></d></d>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->Child("d")->Child("d")->InnerText(), "deep");
}

TEST(ParserTest, ErrorsReported) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a></b>").ok());
  EXPECT_FALSE(Parse("<a b=></a>").ok());
  EXPECT_FALSE(Parse("<a>&bogus;</a>").ok());
  EXPECT_FALSE(Parse("<a/><b/>").ok());  // two roots for Parse
  EXPECT_FALSE(Parse("text only").ok());
}

TEST(ParserTest, ForestAllowsMultipleRoots) {
  auto forest = ParseForest("<a/><b>x</b><c/>");
  ASSERT_TRUE(forest.ok()) << forest.status();
  ASSERT_EQ(forest->size(), 3u);
  EXPECT_EQ((*forest)[1]->InnerText(), "x");
}

TEST(ParserTest, ForestAllowsEmpty) {
  auto forest = ParseForest("  ");
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->empty());
}

TEST(WriterTest, EscapesSpecials) {
  auto n = Node::Element("t");
  n->SetAttr("a", "x\"<>&'");
  n->AddText("1 < 2 & 3 > 2");
  const std::string s = Serialize(*n);
  EXPECT_EQ(s,
            "<t a=\"x&quot;&lt;&gt;&amp;&apos;\">1 &lt; 2 &amp; 3 &gt; 2</t>");
}

TEST(WriterTest, SerializedSizeMatchesActual) {
  auto n = Node::Element("root");
  n->SetAttr("k", "va<l&ue");
  auto* c = n->AddElement("child");
  c->AddText("some <text> & more");
  n->AddElement("empty");
  EXPECT_EQ(SerializedSize(*n), Serialize(*n).size());
}

TEST(WriterTest, IndentedOutputReparsesEqual) {
  auto doc = Parse("<a><b><c x=\"1\"/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions opts;
  opts.indent = true;
  const std::string pretty = Serialize(**doc, opts);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto again = Parse(pretty);
  ASSERT_TRUE(again.ok()) << again.status();
  // Pretty printing introduces whitespace text nodes only around elements
  // without text children; structural equality holds after re-parse for
  // element names/attrs. Compare compact forms.
  EXPECT_EQ(Serialize(**doc), Serialize(**again));
}

// Round-trip property: parse(serialize(t)) == t for random trees.
class XmlRoundTrip : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<Node> RandomTree(Rng* rng, int depth) {
  auto n = Node::Element("n" + std::to_string(rng->NextBelow(5)));
  const uint64_t attrs = rng->NextBelow(3);
  for (uint64_t i = 0; i < attrs; ++i) {
    n->SetAttr("a" + std::to_string(i),
               rng->NextWord(3) + "<&\"'" + rng->NextWord(2));
  }
  if (depth <= 0) return n;
  const uint64_t kids = rng->NextBelow(4);
  bool last_was_text = false;
  for (uint64_t i = 0; i < kids; ++i) {
    // Adjacent text nodes merge on re-parse (the serialized form cannot
    // distinguish them), so never generate two in a row.
    if (!last_was_text && rng->NextBool(0.3)) {
      n->AddText(rng->NextWord(4) + "&<" + rng->NextWord(2));
      last_was_text = true;
    } else {
      n->AddChild(RandomTree(rng, depth - 1));
      last_was_text = false;
    }
  }
  return n;
}

TEST_P(XmlRoundTrip, ParseSerializeIdentity) {
  Rng rng(GetParam());
  auto tree = RandomTree(&rng, 4);
  const std::string text = Serialize(*tree);
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_TRUE(tree->Equals(**parsed)) << text;
  EXPECT_EQ(SerializedSize(*tree), text.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace mqp::xml
