// Workload generator tests: determinism, schema shape, ground-truth
// helpers, and the standard network builder.
#include <gtest/gtest.h>

#include "net/simulator.h"
#include "common/strings.h"
#include "workload/cd_market.h"
#include "workload/garage_sale.h"
#include "workload/gene_expression.h"
#include "workload/network_builder.h"
#include "xml/writer.h"

namespace mqp::workload {
namespace {

TEST(GarageSaleTest, DeterministicForSameSeed) {
  GarageSaleGenerator a(7), b(7);
  auto sa = a.MakeSellers(10);
  auto sb = b.MakeSellers(10);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].cell, sb[i].cell);
  }
  auto ia = a.MakeItems(sa[0], 5);
  auto ib = b.MakeItems(sb[0], 5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ia[i]->Equals(*ib[i]));
  }
}

TEST(GarageSaleTest, ItemsCarryCoordinatesAndSchema) {
  GarageSaleGenerator gen(3);
  auto sellers = gen.MakeSellers(4);
  for (const auto& s : sellers) {
    auto items = gen.MakeItems(s, 3);
    for (const auto& item : items) {
      EXPECT_EQ(item->name(), "item");
      EXPECT_EQ(item->ChildText("location"), s.cell.coord(0).ToString());
      EXPECT_EQ(item->ChildText("category"), s.cell.coord(1).ToString());
      double price = 0;
      EXPECT_TRUE(ParseDouble(item->ChildText("price"), &price));
      EXPECT_GT(price, 0);
      EXPECT_FALSE(item->ChildText("name").empty());
      EXPECT_FALSE(item->ChildText("condition").empty());
      EXPECT_FALSE(item->ChildText("seller").empty());
    }
  }
}

TEST(GarageSaleTest, SellerCellsAreLeafCategories) {
  GarageSaleGenerator gen(11);
  const auto& hierarchy = gen.hierarchy();
  for (const auto& s : gen.MakeSellers(20)) {
    EXPECT_TRUE(hierarchy.dimension(0).Contains(s.cell.coord(0)));
    EXPECT_TRUE(hierarchy.dimension(1).Contains(s.cell.coord(1)));
    EXPECT_TRUE(hierarchy.dimension(0).ChildrenOf(s.cell.coord(0)).empty());
  }
}

TEST(GarageSaleTest, CountInAreaMatchesItemInArea) {
  GarageSaleGenerator gen(13);
  auto sellers = gen.MakeSellers(6);
  algebra::ItemSet all;
  for (const auto& s : sellers) {
    auto items = gen.MakeItems(s, 4);
    all.insert(all.end(), items.begin(), items.end());
  }
  auto area = *ns::InterestArea::Parse("(USA,*)");
  size_t direct = 0;
  for (const auto& item : all) {
    if (GarageSaleGenerator::ItemInArea(*item, area)) ++direct;
  }
  EXPECT_EQ(GarageSaleGenerator::CountInArea(all, area), direct);
  // Every item is inside the all-covering area.
  auto everything = *ns::InterestArea::Parse("(*,*)");
  EXPECT_EQ(GarageSaleGenerator::CountInArea(all, everything), all.size());
}

TEST(CdMarketTest, TitlesUniqueAndListingsCoverEveryTitle) {
  CdMarketGenerator gen(5);
  auto titles = gen.MakeTitles(30);
  std::set<std::string> unique(titles.begin(), titles.end());
  EXPECT_EQ(unique.size(), titles.size());
  auto listings = gen.MakeTrackListings(titles, 3);
  EXPECT_EQ(listings.size(), titles.size() * 3);
  std::set<std::string> listed;
  for (const auto& l : listings) {
    listed.insert(l->ChildText("CDtitle"));
  }
  EXPECT_EQ(listed.size(), unique.size());
}

TEST(CdMarketTest, SellerCdsDrawFromTitleList) {
  CdMarketGenerator gen(7);
  auto titles = gen.MakeTitles(10);
  std::set<std::string> valid(titles.begin(), titles.end());
  for (const auto& cd : gen.MakeSellerCds(titles, "s", 20)) {
    EXPECT_TRUE(valid.count(cd->ChildText("title")));
    double price = 0;
    ASSERT_TRUE(ParseDouble(cd->ChildText("price"), &price));
    EXPECT_GE(price, 4);
    EXPECT_LT(price, 26);
    EXPECT_EQ(cd->ChildText("seller"), "s");
  }
}

TEST(CdMarketTest, FavoriteSongsComeFromListings) {
  CdMarketGenerator gen(9);
  auto titles = gen.MakeTitles(8);
  auto listings = gen.MakeTrackListings(titles, 2);
  std::set<std::string> songs;
  for (const auto& l : listings) songs.insert(l->ChildText("song"));
  for (const auto& f : gen.MakeFavoriteSongs(listings, 6)) {
    EXPECT_TRUE(songs.count(f->ChildText("name")));
  }
}

TEST(CdMarketTest, Figure3PlanShape) {
  CdMarketGenerator gen(11);
  auto titles = gen.MakeTitles(4);
  auto listings = gen.MakeTrackListings(titles, 2);
  auto favorites = gen.MakeFavoriteSongs(listings, 3);
  auto plan = MakeFigure3Plan(favorites, "urn:F:a", "urn:T:b", "c:9", "10");
  EXPECT_EQ(plan.root()->type(), algebra::OpType::kDisplay);
  EXPECT_EQ(plan.target(), "c:9");
  EXPECT_EQ(plan.root()->UrnLeaves().size(), 2u);
  // The price select sits directly on the ForSale URN.
  const auto* join2 = plan.root()->child(0).get();
  const auto* join1 = join2->child(0).get();
  EXPECT_EQ(join1->child(0)->type(), algebra::OpType::kSelect);
  EXPECT_EQ(join1->child(0)->child(0)->urn(), "urn:F:a");
}

TEST(GeneExpressionTest, FigureOneGroupsMatchPaper) {
  GeneExpressionGenerator gen(1);
  auto groups = gen.FigureOneGroups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].name, "fly-neuro");
  // The fly group cannot overlap a mammalian query; the other two can.
  auto query = *ns::InterestArea::Parse(
      "(Coelomata.Deuterostomia.Mammalia,Muscle.Cardiac)");
  EXPECT_FALSE(groups[0].area.Overlaps(query));
  EXPECT_TRUE(groups[1].area.Overlaps(query));
  EXPECT_TRUE(groups[2].area.Overlaps(query));
}

TEST(GeneExpressionTest, ExperimentsStayInsideGroupArea) {
  GeneExpressionGenerator gen(2);
  for (const auto& g : gen.FigureOneGroups()) {
    for (const auto& e : gen.MakeExperiments(g, 25)) {
      auto org = ns::CategoryPath::Parse(e->ChildText("organism"));
      auto cell = ns::CategoryPath::Parse(e->ChildText("celltype"));
      ASSERT_TRUE(org.ok() && cell.ok());
      ns::InterestCell c({*org, *cell});
      bool covered = false;
      for (const auto& ac : g.area.cells()) {
        if (ac.Covers(c)) covered = true;
      }
      EXPECT_TRUE(covered) << g.name << ": " << c.ToString();
    }
  }
}

TEST(GeneExpressionTest, RandomGroupsAreValidAreas) {
  GeneExpressionGenerator gen(3);
  for (const auto& g : gen.RandomGroups(20)) {
    EXPECT_FALSE(g.area.empty());
    for (const auto& c : g.area.cells()) {
      EXPECT_TRUE(gen.hierarchy().Validate(c.coords()).ok());
    }
  }
}

TEST(NetworkBuilderTest, TopologyShape) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 9;
  params.items_per_seller = 2;
  auto net = BuildGarageSaleNetwork(&sim, params);
  EXPECT_NE(net.client, nullptr);
  EXPECT_NE(net.top_meta, nullptr);
  EXPECT_EQ(net.index_servers.size(), 4u);
  EXPECT_EQ(net.sellers.size(), 9u);
  EXPECT_EQ(net.all_items.size(), 18u);
  EXPECT_TRUE(net.top_meta->options().roles.meta_index);
  EXPECT_TRUE(net.top_meta->options().roles.authoritative);
  // IndexFor maps a seller to a covering index server.
  for (size_t i = 0; i < net.sellers.size(); ++i) {
    peer::Peer* idx = net.IndexFor(net.seller_specs[i].cell);
    EXPECT_TRUE(idx->options().interest.Overlaps(
        ns::InterestArea(net.seller_specs[i].cell)));
  }
}

TEST(NetworkBuilderTest, SimulatorDrainedAfterBuild) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 4;
  auto net = BuildGarageSaleNetwork(&sim, params);
  EXPECT_TRUE(sim.Idle());
  (void)net;
}

TEST(NetworkBuilderTest, AreaQueryPlanShape) {
  auto area = *ns::InterestArea::Parse("(USA,Music)");
  auto plan = MakeAreaQueryPlan(area);
  EXPECT_EQ(plan.root()->type(), algebra::OpType::kDisplay);
  EXPECT_EQ(plan.root()->child(0)->type(), algebra::OpType::kUrn);
  auto with_pred =
      MakeAreaQueryPlan(area, algebra::FieldLess("price", "9"));
  EXPECT_EQ(with_pred.root()->child(0)->type(), algebra::OpType::kSelect);
}

}  // namespace
}  // namespace mqp::workload
