// Loopback smoke tests for runtime::TcpTransport (DESIGN.md §8): the
// unmodified peer stack resolves a garage-sale query over real TCP
// sockets, and shutdown is graceful and idempotent.
//
// Unlike the simulator and ThreadedRuntime, delivery here is
// asynchronous in *real* time: reader threads invoke handlers as soon
// as frames arrive. Mutating a peer from the test thread (JoinNetwork,
// SubmitQuery) would therefore race an in-flight delivery, so every
// peer-state mutation goes through ScheduleFor, which the transport
// runs under that peer's delivery mutex. This is the documented usage
// contract for driving peers on a live transport.
//
// Environments without loopback networking (or with sockets disabled)
// are real: TcpTransport reports !ok() and the tests skip.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "ns/interest.h"
#include "peer/peer.h"
#include "runtime/tcp_transport.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using runtime::TcpOptions;
using runtime::TcpTransport;

const std::vector<std::string> kFields = {"location", "category"};

std::unique_ptr<peer::Peer> MakePeer(TcpTransport* transport,
                                     std::string name,
                                     const ns::InterestArea& interest,
                                     bool meta, bool index, bool base) {
  peer::PeerOptions opts;
  opts.name = std::move(name);
  opts.dimension_fields = kFields;
  opts.interest = interest;
  opts.roles.meta_index = meta;
  opts.roles.index = index;
  opts.roles.base = base;
  opts.roles.authoritative = meta || index;
  return std::make_unique<peer::Peer>(transport, opts);
}

ns::InterestArea MustArea(const std::string& text) {
  auto area = ns::InterestArea::Parse(text);
  EXPECT_TRUE(area.ok()) << text;
  return *area;
}

TEST(TcpTransportSmoke, GarageSaleQueryOverLoopback) {
  TcpTransport tcp;
  if (!tcp.ok()) GTEST_SKIP() << "no loopback sockets in this environment";

  // A small garage-sale network: top meta, one index server per state,
  // three sellers, one client. Registration (peer construction) happens
  // before any traffic flows, so plain calls are safe here.
  std::vector<std::unique_ptr<peer::Peer>> owned;
  auto everything = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
  owned.push_back(MakePeer(&tcp, "meta-top", everything,
                           /*meta=*/true, /*index=*/false, /*base=*/false));
  peer::Peer* meta = owned.back().get();

  workload::GarageSaleGenerator gen(7);
  auto sellers = gen.MakeSellers(3);

  std::vector<peer::Peer*> index_servers;
  for (const char* state : {"USA/OR", "USA/WA", "USA/CA"}) {
    auto path = ns::CategoryPath::Parse(state);
    ASSERT_TRUE(path.ok());
    auto area =
        ns::InterestArea(ns::InterestCell({*path, ns::CategoryPath()}));
    owned.push_back(MakePeer(&tcp, std::string("index-") + state, area,
                             false, true, false));
    owned.back()->AddBootstrap(meta->address());
    index_servers.push_back(owned.back().get());
  }

  algebra::ItemSet all_items;
  std::vector<peer::Peer*> seller_peers;
  for (size_t i = 0; i < sellers.size(); ++i) {
    owned.push_back(MakePeer(&tcp, sellers[i].name,
                             ns::InterestArea(sellers[i].cell), false,
                             false, true));
    peer::Peer* s = owned.back().get();
    auto items = gen.MakeItems(sellers[i], 4);
    all_items.insert(all_items.end(), items.begin(), items.end());
    s->PublishCollection("c" + std::to_string(i),
                         ns::InterestArea(sellers[i].cell), items);
    peer::Peer* idx = nullptr;
    for (peer::Peer* cand : index_servers) {
      if (cand->options().interest.Overlaps(
              ns::InterestArea(sellers[i].cell))) {
        idx = cand;
        break;
      }
    }
    s->AddBootstrap((idx ? idx : meta)->address());
    seller_peers.push_back(s);
  }

  owned.push_back(MakePeer(&tcp, "client", everything, false, false, false));
  peer::Peer* client = owned.back().get();
  client->AddBootstrap(meta->address());

  // Join in tiers, letting the transport settle between them so sellers
  // find registered index servers. All joins run under the joining
  // peer's delivery mutex.
  for (peer::Peer* idx : index_servers) {
    tcp.ScheduleFor(idx->id(), 0.0, [idx] { idx->JoinNetwork(); });
  }
  tcp.Run();
  for (peer::Peer* s : seller_peers) {
    tcp.ScheduleFor(s->id(), 0.0, [s] { s->JoinNetwork(); });
  }
  tcp.Run();

  // Query everything under (USA,*) and wait for the (real-time) result.
  std::atomic<bool> returned{false};
  bool complete = false;
  std::vector<std::string> names;
  tcp.ScheduleFor(client->id(), 0.0, [&] {
    client->SubmitQuery(
        workload::MakeAreaQueryPlan(MustArea("(USA,*)")),
        [&](const peer::QueryOutcome& o) {
          complete = o.complete;
          for (const auto& item : o.items) {
            names.push_back(item->ChildText("name"));
          }
          std::sort(names.begin(), names.end());
          returned.store(true, std::memory_order_release);
        });
  });
  tcp.Run();
  ASSERT_TRUE(returned.load(std::memory_order_acquire));
  EXPECT_TRUE(complete);

  std::vector<std::string> expected;
  for (const auto& item : all_items) {
    expected.push_back(item->ChildText("name"));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(expected, names);

  // Real frames crossed real sockets.
  const net::NetStats& stats = std::as_const(tcp).stats();
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.bytes, 0u);

  // Shut the transport down before the peers it delivers into die.
  tcp.Shutdown();
}

TEST(TcpTransportSmoke, ShutdownIsGracefulAndIdempotent) {
  TcpTransport tcp(TcpOptions{.settle_seconds = 0.05,
                              .drain_timeout_seconds = 2.0});
  if (!tcp.ok()) GTEST_SKIP() << "no loopback sockets in this environment";

  auto everything = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
  auto a = MakePeer(&tcp, "a", everything, true, false, false);
  auto b = MakePeer(&tcp, "b", everything, false, false, false);
  b->AddBootstrap(a->address());
  peer::Peer* bp = b.get();
  tcp.ScheduleFor(bp->id(), 0.0, [bp] { bp->JoinNetwork(); });
  tcp.Run();

  EXPECT_GT(std::as_const(tcp).stats().messages, 0u);

  tcp.Shutdown();
  tcp.Shutdown();  // idempotent

  // After shutdown, sends are dropped silently rather than crashing.
  tcp.ScheduleFor(bp->id(), 0.0, [bp] { bp->JoinNetwork(); });
  SUCCEED();
}

TEST(TcpTransportSmoke, AddressesRoundTripThroughLookup) {
  TcpTransport tcp;
  if (!tcp.ok()) GTEST_SKIP() << "no loopback sockets in this environment";

  auto everything = ns::InterestArea(
      ns::InterestCell({ns::CategoryPath(), ns::CategoryPath()}));
  auto a = MakePeer(&tcp, "a", everything, true, false, false);
  auto b = MakePeer(&tcp, "b", everything, false, false, true);

  EXPECT_EQ(tcp.size(), 2u);
  for (peer::Peer* p : {a.get(), b.get()}) {
    const std::string& addr = tcp.Address(p->id());
    EXPECT_EQ(addr.rfind("127.0.0.1:", 0), 0u) << addr;
    auto looked = tcp.Lookup(addr);
    ASSERT_TRUE(looked.ok());
    EXPECT_EQ(*looked, p->id());
  }
  EXPECT_FALSE(tcp.Lookup("10.9.9.9:1").ok());

  tcp.Shutdown();
}

}  // namespace
}  // namespace mqp
