#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace mqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MQP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> r = Quarter(6);  // 6/2=3 is odd
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(8).value(), 2);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Half(3).value_or(-1), -1);
  EXPECT_EQ(Half(4).value_or(-1), 2);
}

TEST(ResultTest, OkStatusConversionIsInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeCoversEndpoints) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextInRange(-2, 2));
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  size_t low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.NextZipf(100, 1.0) < 10) ++low;
  }
  // With s=1.0, ~58% of mass is on the first 10 of 100 ranks.
  EXPECT_GT(low, kTrials / 2);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(17);
  size_t low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.NextZipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kTrials, 0.10, 0.03);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSkipEmpty) {
  auto parts = SplitSkipEmpty("/a//b/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "/"), "x/y/z");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("urn:X:Y", "urn:"));
  EXPECT_FALSE(StartsWith("ur", "urn:"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "/"), "a/b/c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64(" -5 ", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringsTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("9.99", &d));
  EXPECT_DOUBLE_EQ(d, 9.99);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000);
  EXPECT_FALSE(ParseDouble("ten", &d));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(10), "10");
  EXPECT_EQ(FormatDouble(9.99), "9.99");
}

}  // namespace
}  // namespace mqp
