#include <gtest/gtest.h>

#include "net/simulator.h"
#include "baseline/central_index.h"
#include "baseline/coordinator.h"
#include "baseline/flooding.h"
#include "common/strings.h"
#include "workload/network_builder.h"

namespace mqp::baseline {
namespace {

using workload::BuildGarageSaleNetwork;
using workload::GarageSaleGenerator;
using workload::GarageSaleNetworkParams;
using workload::MakeAreaQueryPlan;

TEST(CentralIndexTest, LookupAndFetchReturnsAllItems) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 10;
  params.items_per_seller = 6;
  params.seed = 19;
  auto net = BuildGarageSaleNetwork(&sim, params);

  // Build the omniscient index (mandatory registration in Napster).
  CentralIndexServer index(&sim);
  for (size_t i = 0; i < net.sellers.size(); ++i) {
    index.AddEntry(ns::InterestArea(net.seller_specs[i].cell),
                   net.sellers[i]->address(),
                   "/data[id=c" + std::to_string(i) + "]");
  }
  CentralIndexClient client(&sim, index.address());

  auto area = *ns::InterestArea::Parse("(USA,*)");
  CentralIndexClient::Outcome outcome;
  bool done = false;
  client.Run(MakeAreaQueryPlan(area), area,
             [&](const CentralIndexClient::Outcome& o) {
               outcome = o;
               done = true;
             });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  // Central fetch pulls whole collections; every USA seller's items come
  // back (collections are single-cell, so counts match the ground truth).
  EXPECT_EQ(outcome.items.size(),
            GarageSaleGenerator::CountInArea(net.all_items, area));
  EXPECT_GT(outcome.servers_contacted, 0u);
}

TEST(CentralIndexTest, EmptyAreaCompletesWithNothing) {
  net::Simulator sim;
  CentralIndexServer index(&sim);
  CentralIndexClient client(&sim, index.address());
  auto area = *ns::InterestArea::Parse("(France,Books)");
  bool done = false;
  CentralIndexClient::Outcome outcome;
  client.Run(MakeAreaQueryPlan(area), area,
             [&](const CentralIndexClient::Outcome& o) {
               outcome = o;
               done = true;
             });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.items.empty());
}

TEST(FloodingTest, HorizonLimitsReach) {
  net::Simulator sim;
  Rng rng(23);
  GarageSaleGenerator gen(23);
  auto sellers = gen.MakeSellers(30);

  std::vector<std::unique_ptr<FloodingPeer>> peers;
  FloodingClient client(&sim);
  std::vector<FloodingPeer*> all{&client};
  size_t total_relevant = 0;
  auto area = *ns::InterestArea::Parse("(USA,*)");
  for (const auto& s : sellers) {
    auto items = gen.MakeItems(s, 4);
    total_relevant += GarageSaleGenerator::CountInArea(items, area);
    peers.push_back(std::make_unique<FloodingPeer>(
        &sim, ns::InterestArea(s.cell), items));
    all.push_back(peers.back().get());
  }
  // A sparse line topology: horizon clearly limits reach.
  for (size_t i = 0; i + 1 < all.size(); ++i) {
    all[i]->AddNeighbor(all[i + 1]->id());
    all[i + 1]->AddNeighbor(all[i]->id());
  }
  client.Query(area, /*horizon=*/3);
  sim.Run();
  const size_t with_small_horizon = client.CollectedItems().size();
  EXPECT_LT(with_small_horizon, total_relevant);

  client.Reset();
  client.Query(area, /*horizon=*/64);
  sim.Run();
  EXPECT_EQ(client.CollectedItems().size(), total_relevant);
  EXPECT_GT(client.hits_received(), 0u);
}

TEST(FloodingTest, DuplicateFloodsDropped) {
  net::Simulator sim;
  Rng rng(29);
  GarageSaleGenerator gen(29);
  auto sellers = gen.MakeSellers(12);
  std::vector<std::unique_ptr<FloodingPeer>> peers;
  FloodingClient client(&sim);
  std::vector<FloodingPeer*> all{&client};
  for (const auto& s : sellers) {
    peers.push_back(std::make_unique<FloodingPeer>(
        &sim, ns::InterestArea(s.cell), gen.MakeItems(s, 3)));
    all.push_back(peers.back().get());
  }
  BuildRandomOverlay(all, /*degree=*/4, &rng);
  auto area = *ns::InterestArea::Parse("(USA,*)");
  client.Query(area, 10);
  sim.Run();
  // Each peer's items appear at most once despite many flood paths.
  const size_t expected = [&] {
    size_t n = 0;
    for (const auto& p : peers) {
      (void)p;
    }
    for (const auto& s : sellers) {
      auto items = gen.MakeItems(s, 3);
      (void)items;
    }
    return n;
  }();
  (void)expected;
  std::map<std::string, int> by_seller;
  for (const auto& item : client.CollectedItems()) {
    by_seller[item->ChildText("seller")]++;
  }
  for (const auto& [seller, count] : by_seller) {
    EXPECT_LE(count, 3) << seller << " duplicated";
  }
}

TEST(CoordinatorTest, ShipAllGathersEverythingThenFilters) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 8;
  params.items_per_seller = 5;
  params.seed = 31;
  auto net = BuildGarageSaleNetwork(&sim, params);
  Coordinator coord(&sim, Coordinator::Mode::kShipAll);
  for (size_t i = 0; i < net.sellers.size(); ++i) {
    coord.AddCatalogEntry(ns::InterestArea(net.seller_specs[i].cell),
                          net.sellers[i]->address(),
                          "/data[id=c" + std::to_string(i) + "]");
  }
  auto area = *ns::InterestArea::Parse("(USA,*)");
  bool done = false;
  Coordinator::Outcome outcome;
  coord.Run(MakeAreaQueryPlan(area, algebra::FieldLess("price", "100")),
            [&](const Coordinator::Outcome& o) {
              outcome = o;
              done = true;
            });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  size_t expected = 0;
  for (const auto& item : net.all_items) {
    double price = 0;
    if (GarageSaleGenerator::ItemInArea(
            *item, area) &&
        ParseDouble(item->ChildText("price"), &price) && price < 100) {
      ++expected;
    }
  }
  EXPECT_EQ(outcome.items.size(), expected);
}

TEST(CoordinatorTest, PushSelectionsMovesFewerBytes) {
  GarageSaleNetworkParams params;
  params.num_sellers = 12;
  params.items_per_seller = 20;
  params.seed = 37;

  auto run_mode = [&](Coordinator::Mode mode) -> uint64_t {
    net::Simulator sim;
    auto net = BuildGarageSaleNetwork(&sim, params);
    Coordinator coord(&sim, mode);
    for (size_t i = 0; i < net.sellers.size(); ++i) {
      coord.AddCatalogEntry(ns::InterestArea(net.seller_specs[i].cell),
                            net.sellers[i]->address(),
                            "/data[id=c" + std::to_string(i) + "]");
    }
    sim.stats().Clear();
    bool done = false;
    coord.Run(MakeAreaQueryPlan(*ns::InterestArea::Parse("(USA,*)"),
                                algebra::FieldLess("price", "10")),
              [&](const Coordinator::Outcome&) { done = true; });
    sim.Run();
    EXPECT_TRUE(done);
    return sim.stats().bytes;
  };

  const uint64_t ship_all = run_mode(Coordinator::Mode::kShipAll);
  const uint64_t pushed = run_mode(Coordinator::Mode::kPushSelections);
  // price<10 is very selective; pushing the select saves bytes.
  EXPECT_LT(pushed, ship_all);
}

TEST(CoordinatorTest, FailedSourceTimesOutWithPartialAnswer) {
  net::Simulator sim;
  GarageSaleNetworkParams params;
  params.num_sellers = 6;
  params.items_per_seller = 4;
  params.seed = 41;
  auto net = BuildGarageSaleNetwork(&sim, params);
  Coordinator coord(&sim, Coordinator::Mode::kShipAll,
                    /*timeout_seconds=*/5);
  for (size_t i = 0; i < net.sellers.size(); ++i) {
    coord.AddCatalogEntry(ns::InterestArea(net.seller_specs[i].cell),
                          net.sellers[i]->address(),
                          "/data[id=c" + std::to_string(i) + "]");
  }
  sim.Fail(net.sellers[0]->id());
  auto area = *ns::InterestArea::Parse("(*,*)");
  bool done = false;
  Coordinator::Outcome outcome;
  coord.Run(MakeAreaQueryPlan(area), [&](const Coordinator::Outcome& o) {
    outcome = o;
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.sources_failed, 1u);
  // Everyone else's data still arrived.
  EXPECT_EQ(outcome.items.size(),
            net.all_items.size() - params.items_per_seller);
  // The answer arrived only after the full timeout.
  EXPECT_GE(outcome.finished_at - outcome.started_at, 5.0);
}

}  // namespace
}  // namespace mqp::baseline
