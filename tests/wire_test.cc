// Wire layer: envelope framing, shared payloads, the plan serialization
// cache, and the no-reserialize guarantee for pure routing hops.
#include <gtest/gtest.h>

#include "net/simulator.h"
#include "peer/peer.h"
#include "wire/envelope.h"
#include "wire/plan_codec.h"
#include "workload/garage_sale.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using algebra::Plan;
using algebra::PlanNode;

algebra::ItemSet SomeItems(size_t n, uint64_t seed) {
  workload::GarageSaleGenerator gen(seed);
  auto sellers = gen.MakeSellers(1);
  return gen.MakeItems(sellers[0], n);
}

// --- envelope framing -----------------------------------------------------------

TEST(WireEnvelopeTest, RoundTripsThroughMessageSharingThePayload) {
  wire::Envelope env;
  env.kind = "mqp";
  env.query_id = "client-q7";
  env.hops = 12;
  env.payload = net::MakePayload("<mqp><plan><data/></plan></mqp>");

  net::Message msg = env.ToMessage(3, 9);
  EXPECT_EQ(msg.kind, "mqp");
  EXPECT_EQ(msg.payload.get(), env.payload.get());  // shared, not copied

  auto back = wire::DecodeEnvelope(msg);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->kind, env.kind);
  EXPECT_EQ(back->query_id, env.query_id);
  EXPECT_EQ(back->hops, env.hops);
  EXPECT_EQ(back->payload.get(), env.payload.get());
}

TEST(WireEnvelopeTest, EmptyQueryIdAndPayloadRoundTrip) {
  wire::Envelope env;
  env.kind = "register";
  auto back = wire::DecodeEnvelope(env.ToMessage(0, 1));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, "register");
  EXPECT_EQ(back->query_id, "");
  EXPECT_EQ(back->hops, 0u);
  EXPECT_EQ(back->body(), "");
}

TEST(WireEnvelopeTest, RawMessageDecodesAsLegacyEnvelope) {
  net::Message raw(0, 1, "mqp", "<not-even-xml");
  auto env = wire::DecodeEnvelope(raw);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->kind, "mqp");
  EXPECT_EQ(env->query_id, "");
  EXPECT_EQ(env->hops, 0u);
  EXPECT_EQ(env->body(), "<not-even-xml");
}

TEST(WireEnvelopeTest, MalformedHeaderIsRejected) {
  net::Message msg(0, 1, "mqp", "body");
  msg.header = "bogus\n";
  EXPECT_FALSE(wire::DecodeEnvelope(msg).ok());
  msg.header = "w1|mqp|only-two-fields\n";
  EXPECT_FALSE(wire::DecodeEnvelope(msg).ok());
  msg.header = "w1|mqp|q|not-a-number\n";
  EXPECT_FALSE(wire::DecodeEnvelope(msg).ok());
  msg.header = "w1|mqp|q|-3\n";
  EXPECT_FALSE(wire::DecodeEnvelope(msg).ok());
  msg.header = "w1|mqp|q|4294967296\n";  // > UINT32_MAX: reject, not wrap
  EXPECT_FALSE(wire::DecodeEnvelope(msg).ok());
}

TEST(WireEnvelopeTest, QueryIdMayContainTheDelimiter) {
  // Query ids derive from user-settable peer names; "a|b-q1" must survive.
  wire::Envelope env;
  env.kind = "mqp";
  env.query_id = "a|b-q1";
  env.hops = 3;
  auto back = wire::DecodeEnvelope(env.ToMessage(0, 1));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->query_id, "a|b-q1");
  EXPECT_EQ(back->hops, 3u);
}

TEST(WireEnvelopeTest, SimulatorCountsHeaderInWireSize) {
  net::Simulator sim;
  class Sink : public net::PeerNode {
   public:
    void HandleMessage(const net::Message&) override {}
  } sink;
  const net::PeerId to = sim.Register(&sink);

  wire::Envelope env;
  env.kind = "fetch";
  env.query_id = "r1";
  env.payload = net::MakePayload("0123456789");
  wire::Send(&sim, net::kNoPeer, to, env);
  EXPECT_EQ(sim.stats().bytes, env.WireSize());
  EXPECT_GT(env.WireSize(), env.body().size());  // header accounted
}

// --- plan serialization cache ---------------------------------------------------

Plan SamplePlan() {
  auto sel = PlanNode::Select(
      algebra::FieldLess("price", "100"),
      PlanNode::Union({PlanNode::XmlData(SomeItems(5, 21)),
                       PlanNode::UrnRef("urn:InterestArea:(USA.OR,*)")}));
  Plan plan(PlanNode::Display("10.0.0.1:9020", sel));
  plan.set_query_id("q-cache");
  return plan;
}

TEST(PlanCacheTest, SerializeOnceThenReuse) {
  Plan plan = SamplePlan();
  net::NetStats stats;
  auto first = wire::SerializePlanShared(plan, &stats);
  EXPECT_FALSE(first.reused);
  EXPECT_TRUE(plan.WireCacheValid());
  auto second = wire::SerializePlanShared(plan, &stats);
  EXPECT_TRUE(second.reused);
  EXPECT_EQ(first.bytes.get(), second.bytes.get());
  EXPECT_EQ(stats.plan_serializations, 1u);
  EXPECT_EQ(stats.forwards_without_reserialize, 1u);
}

TEST(PlanCacheTest, ParseAttachesIncomingBufferAsCache) {
  Plan plan = SamplePlan();
  auto bytes = net::MakePayload(algebra::SerializePlan(plan));
  net::NetStats stats;
  auto parsed = wire::ParsePlanShared(bytes, &stats);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(stats.plan_parses, 1u);
  // Forwarding the freshly parsed plan reuses the very buffer it came in.
  auto out = wire::SerializePlanShared(*parsed, &stats);
  EXPECT_TRUE(out.reused);
  EXPECT_EQ(out.bytes.get(), bytes.get());
  EXPECT_EQ(stats.plan_serializations, 0u);
}

// Property-style: every mutation kind must invalidate the cache, and the
// re-serialized plan must parse back structurally equal.
TEST(PlanCacheTest, MutationsInvalidateAndRoundTrip) {
  using Mutation = std::function<void(Plan*)>;
  const std::vector<std::pair<const char*, Mutation>> mutations = {
      {"morph-urn-to-data",
       [](Plan* p) {
         auto urns = p->root()->UrnLeaves();
         ASSERT_FALSE(urns.empty());
         const_cast<PlanNode*>(urns[0])->MorphToData(SomeItems(2, 22));
       }},
      {"annotate-node",
       [](Plan* p) {
         p->root()->child(0)->annotations().cardinality = 42;
       }},
      {"append-provenance",
       [](Plan* p) {
         p->provenance().Add({"10.0.0.9:9020", 1.0,
                              algebra::ProvenanceAction::kForwarded,
                              "relay", 0});
       }},
      {"replace-root",
       [](Plan* p) {
         p->set_root(PlanNode::Display(
             "10.0.0.1:9020", PlanNode::XmlData(SomeItems(1, 23))));
       }},
      {"edit-policy-in-place",
       [](Plan* p) {
         p->policy().route_allow = {"10.0.0.3:9020"};
         auto serialized = wire::SerializePlanShared(*p);  // re-cache
         ASSERT_TRUE(p->WireCacheValid());
         // Same vector length, different content: must still invalidate.
         p->policy().route_allow[0] = "10.0.0.4:9020";
       }},
  };
  for (const auto& [name, mutate] : mutations) {
    Plan plan = SamplePlan();
    auto before = wire::SerializePlanShared(plan);
    ASSERT_TRUE(plan.WireCacheValid()) << name;
    mutate(&plan);
    EXPECT_FALSE(plan.WireCacheValid()) << name;
    auto after = wire::SerializePlanShared(plan);
    EXPECT_FALSE(after.reused) << name;
    EXPECT_NE(after.bytes.get(), before.bytes.get()) << name;
    // mutate → serialize → parse → structural equality.
    auto back = algebra::ParsePlan(*after.bytes);
    ASSERT_TRUE(back.ok()) << name << ": " << back.status();
    ASSERT_NE(back->root(), nullptr) << name;
    EXPECT_TRUE(back->root()->Equals(*plan.root())) << name;
    EXPECT_EQ(back->provenance().size(), plan.provenance().size()) << name;
  }
}

// --- regression: pure routing hops must not re-serialize ------------------------

TEST(WireRoutingTest, ForwardedUnchangedPlanIsNotReserialized) {
  net::Simulator sim;
  const auto area = ns::MakeArea({"USA/OR/Portland", "Music/CDs"});

  // client → relay (knows nothing; pure router) → authority (binds and
  // evaluates). Provenance off: the plan must cross the relay untouched.
  peer::PeerOptions co;
  co.name = "client";
  co.record_provenance = false;
  co.cache_from_plans = false;
  peer::Peer client(&sim, co);

  peer::PeerOptions ro;
  ro.name = "relay";
  ro.record_provenance = false;
  ro.cache_from_plans = false;
  peer::Peer relay(&sim, ro);

  peer::PeerOptions ao;
  ao.name = "authority";
  ao.record_provenance = false;
  ao.cache_from_plans = false;
  ao.roles.base = true;
  ao.roles.index = true;
  ao.roles.authoritative = true;
  ao.interest = ns::MakeArea({"USA/OR", "*"});
  peer::Peer authority(&sim, ao);
  authority.PublishCollection("c0", area, SomeItems(4, 31));

  client.AddBootstrap(relay.address());
  relay.AddBootstrap(authority.address());

  peer::QueryOutcome outcome;
  bool done = false;
  client.SubmitQuery(workload::MakeAreaQueryPlan(area),
                     [&](const peer::QueryOutcome& o) {
                       outcome = o;
                       done = true;
                     });
  sim.Run();

  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), 4u);

  // The relay routed the plan without serializing anything.
  EXPECT_EQ(relay.counters().plans_received, 1u);
  EXPECT_EQ(relay.counters().plans_forwarded, 1u);
  EXPECT_EQ(relay.counters().plan_serializations, 0u);
  EXPECT_EQ(relay.counters().forwards_without_reserialize, 1u);

  // Streaming codec: the pure routing hop (receive → decode → forward)
  // built zero xml::Nodes — the throwaway DOM is gone from the hot path.
  EXPECT_EQ(relay.counters().dom_nodes_built, 0u);
  EXPECT_EQ(relay.counters().token_decodes, 1u);
  EXPECT_GT(relay.counters().plan_decode_ns, 0u);
  // The authority evaluates the bound sub-plan, yet builds zero nodes
  // too: the shared-item store hands the engine refs into its collections
  // and the result rides the plan as those same shared items (the
  // receiving client is who materializes them from the wire). Its engine
  // counters show the work happened.
  EXPECT_EQ(authority.counters().dom_nodes_built, 0u);
  EXPECT_EQ(authority.counters().items_cloned, 0u);
  EXPECT_GT(authority.counters().subplans_evaluated, 0u);
  EXPECT_GT(authority.counters().engine_eval_ns, 0u);
  // The returning result's items are materialized into real nodes at
  // decode time somewhere — network-wide, not on any routing hop.
  EXPECT_GT(sim.stats().dom_nodes_built, 0u);
  EXPECT_EQ(sim.stats().token_decodes, sim.stats().plan_parses);
  EXPECT_GT(sim.stats().plan_decode_ns, 0u);

  // Global accounting: strictly fewer serializations than plan-carrying
  // messages (client's initial send + relay hop + returning result).
  const uint64_t plan_messages = sim.stats().messages_by_kind.at("mqp") +
                                 sim.stats().messages_by_kind.at("result");
  EXPECT_EQ(plan_messages, 3u);
  EXPECT_LT(sim.stats().plan_serializations, plan_messages);
  EXPECT_EQ(sim.stats().forwards_without_reserialize, 1u);
  EXPECT_EQ(sim.stats().plan_parses, 3u);
}

}  // namespace
}  // namespace mqp
