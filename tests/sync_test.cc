// Dynamic catalog maintenance: versioned records, CatalogDelta merge
// semantics, gossip/anti-entropy convergence, TTL expiry and churn.
#include <gtest/gtest.h>

#include "net/simulator.h"
#include "catalog/versioned.h"
#include "peer/peer.h"
#include "sync/gossip.h"
#include "workload/churn.h"
#include "workload/network_builder.h"

namespace mqp {
namespace {

using catalog::Catalog;
using catalog::CatalogDelta;
using catalog::HoldingLevel;
using catalog::SyncEntry;
using catalog::SyncEntryKind;
using catalog::VersionedCatalog;
using catalog::VersionVector;
using peer::Peer;
using peer::PeerOptions;
using peer::QueryOutcome;

SyncEntry AreaEntry(const std::string& server, const std::string& area,
                    const std::string& xpath = "", int delay = 0) {
  SyncEntry se;
  se.kind = SyncEntryKind::kArea;
  se.entry.level = HoldingLevel::kBase;
  se.entry.area = *ns::InterestArea::Parse(area);
  se.entry.server = server;
  se.entry.xpath = xpath;
  se.entry.delay_minutes = delay;
  return se;
}

SyncEntry NamedEntry(const std::string& urn, const std::string& server,
                     const std::string& xpath) {
  SyncEntry se;
  se.kind = SyncEntryKind::kNamed;
  se.urn = urn;
  se.entry.level = HoldingLevel::kBase;
  se.entry.server = server;
  se.entry.xpath = xpath;
  return se;
}

TEST(VersionedCatalogTest, DigestXmlRoundTrip) {
  VersionVector v{{"10.0.0.1:9020", 7}, {"10.0.0.2:9020", 123}};
  auto back = catalog::DigestFromXml(catalog::DigestToXml(v));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, v);
  auto empty = catalog::DigestFromXml(catalog::DigestToXml({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(catalog::DigestFromXml("<delta/>").ok());
  EXPECT_FALSE(catalog::DigestFromXml("not xml").ok());
}

TEST(VersionedCatalogTest, DeltaXmlRoundTrip) {
  VersionedCatalog origin("A", nullptr);
  origin.UpsertLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]", 15), 60, 0);
  origin.UpsertLocal(NamedEntry("urn:CD:Tracks", "A", "/data[id=c1]"), 60, 0);
  origin.BumpPresence(60, 0);
  origin.TombstoneLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]", 15), 1);
  CatalogDelta delta = origin.DeltaSince({});
  ASSERT_EQ(delta.size(), 3u);
  auto back = CatalogDelta::FromXml(delta.ToXml());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), delta.size());
  for (size_t i = 0; i < delta.size(); ++i) {
    EXPECT_EQ(back->records[i], delta.records[i]) << i;
  }
  EXPECT_FALSE(CatalogDelta::FromXml("<digest/>").ok());
}

TEST(VersionedCatalogTest, ApplyIsIdempotent) {
  VersionedCatalog origin("A", nullptr);
  origin.UpsertLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]"), 60, 0);
  origin.UpsertLocal(AreaEntry("A", "(USA.WA,*)", "/data[id=c1]"), 60, 0);
  const CatalogDelta delta = origin.DeltaSince({});

  Catalog proj;
  VersionedCatalog replica("B", &proj);
  EXPECT_EQ(replica.Apply(delta, 1.0), 2u);
  EXPECT_EQ(proj.entries().size(), 2u);
  // Same delta again: nothing changes.
  EXPECT_EQ(replica.Apply(delta, 2.0), 0u);
  EXPECT_EQ(proj.entries().size(), 2u);
  EXPECT_EQ(replica.records(), origin.records());
  EXPECT_EQ(replica.vector(), origin.vector());
}

TEST(VersionedCatalogTest, ApplyIsCommutative) {
  VersionedCatalog a("A", nullptr);
  a.UpsertLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]"), 60, 0);
  const CatalogDelta first = a.DeltaSince({});
  // A second, newer version of the same record plus a new fact.
  a.UpsertLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]"), 120, 5);
  a.UpsertLocal(AreaEntry("A", "(France,*)", "/data[id=c1]"), 60, 5);
  ASSERT_EQ(first.records[0].version.sequence, 1u);
  const CatalogDelta second = a.DeltaSince(VersionVector{{"A", 1}});
  VersionedCatalog b("B", nullptr);
  b.UpsertLocal(AreaEntry("B", "(USA.WA,*)", "/data[id=c2]"), 60, 0);
  const CatalogDelta theirs = b.DeltaSince({});

  Catalog proj_x, proj_y;
  VersionedCatalog x("X", &proj_x);
  VersionedCatalog y("Y", &proj_y);
  // x: first, second, theirs. y: theirs, second, first.
  x.Apply(first, 1);
  x.Apply(second, 2);
  x.Apply(theirs, 3);
  y.Apply(theirs, 1);
  y.Apply(second, 2);
  y.Apply(first, 3);  // stale versions: must lose LWW
  EXPECT_EQ(x.records(), y.records());
  EXPECT_EQ(x.vector(), y.vector());
  EXPECT_EQ(proj_x.entries().size(), proj_y.entries().size());
  // The newer TTL (120) won on both, regardless of order.
  for (const auto& [key, rec] : y.records()) {
    if (rec.entry.entry.area.ToString() == "(USA.OR,*)") {
      EXPECT_EQ(rec.ttl_seconds, 120);
    }
  }
}

TEST(VersionedCatalogTest, TombstoneRemovesProjectionThenPurges) {
  VersionedCatalog origin("A", nullptr);
  origin.UpsertLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]"), 60, 0);
  origin.UpsertLocal(NamedEntry("urn:X:Y", "A", "/data[id=c1]"), 60, 0);

  Catalog proj;
  VersionedCatalog replica("B", &proj);
  replica.Apply(origin.DeltaSince({}), 0);
  EXPECT_EQ(proj.entries().size(), 1u);
  EXPECT_FALSE(proj.Resolve("urn:X:Y")->empty());

  origin.TombstoneLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]"), 10);
  origin.TombstoneLocal(NamedEntry("urn:X:Y", "A", "/data[id=c1]"), 10);
  replica.Apply(origin.DeltaSince(replica.vector()), 10);
  EXPECT_TRUE(proj.entries().empty());
  EXPECT_TRUE(proj.Resolve("urn:X:Y")->empty());
  // The tombstones linger (so late gossip cannot resurrect the entries)…
  size_t tombs = 0;
  for (const auto& [key, rec] : replica.records()) {
    tombs += rec.tombstone ? 1 : 0;
  }
  EXPECT_EQ(tombs, 2u);
  // …until the GC horizon passes. The origin's *newest* record survives
  // the purge: it carries A's final sequence, which a peer joining after
  // the GC must still be able to absorb (vectors only grow via records —
  // purging it would leave every future digest exchange chasing an
  // untransferable gap).
  EXPECT_EQ(replica.PurgeTombstones(/*now=*/700, /*min_age=*/600), 1u);
  EXPECT_EQ(replica.PurgeTombstones(700, 600), 0u);
  ASSERT_EQ(replica.records().size(), 1u);
  const auto& kept = replica.records().begin()->second;
  EXPECT_TRUE(kept.tombstone);
  EXPECT_EQ(kept.version.sequence, replica.vector().at("A"));
  // A late joiner still converges on A's final sequence.
  VersionedCatalog late("L", nullptr);
  late.Apply(replica.DeltaSince({}), 701);
  EXPECT_EQ(late.vector().at("A"), replica.vector().at("A"));
}

TEST(VersionedCatalogTest, ChangedDelayReplacesProjectedEntry) {
  // Regression: delay_minutes is not part of record identity, but it IS
  // part of IndexEntry equality — a re-assertion with a new delay must
  // withdraw the old shape from the projection, not leave both.
  VersionedCatalog origin("A", nullptr);
  origin.UpsertLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]", 0), 60, 0);
  Catalog proj;
  VersionedCatalog replica("B", &proj);
  replica.Apply(origin.DeltaSince({}), 0);
  ASSERT_EQ(proj.entries().size(), 1u);
  EXPECT_EQ(proj.entries()[0].delay_minutes, 0);

  origin.UpsertLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]", 15), 60, 1);
  replica.Apply(origin.DeltaSince(replica.vector()), 1);
  ASSERT_EQ(proj.entries().size(), 1u);
  EXPECT_EQ(proj.entries()[0].delay_minutes, 15);

  // And a tombstone built from either shape clears the projection.
  origin.TombstoneLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]", 0), 2);
  replica.Apply(origin.DeltaSince(replica.vector()), 2);
  EXPECT_TRUE(proj.entries().empty());
}

TEST(VersionedCatalogTest, ExpiryDropsStatementsNamingTheGoneServer) {
  using catalog::IntensionalStatement;
  Catalog proj;
  proj.AddStatement(
      *IntensionalStatement::Parse("base[(USA,*)]@S = base[(USA,*)]@T"));
  proj.AddStatement(*IntensionalStatement::Parse(
      "base[(France,*)]@U >= base[(France,*)]@V{10}"));
  VersionedCatalog origin("A", nullptr);
  origin.UpsertLocal(AreaEntry("S", "(USA,*)", "/data[id=c0]"), /*ttl=*/30, 0);
  Catalog* projection = &proj;
  VersionedCatalog replica("B", projection);
  replica.Apply(origin.DeltaSince({}), 0);
  EXPECT_EQ(proj.statements().size(), 2u);
  // S's TTL lapses: its last live entry leaves the projection, and the
  // statement steering bindings at S goes with it (same hazard the
  // RemoveServer regression covers, reached through the sync path).
  replica.ExpireSilent(31);
  ASSERT_EQ(proj.statements().size(), 1u);
  EXPECT_EQ(proj.statements()[0].lhs.server, "U");
  EXPECT_TRUE(proj.entries().empty());
}

TEST(VersionedCatalogTest, SilentOriginExpiresAndRefreshReinstates) {
  VersionedCatalog origin("A", nullptr);
  origin.UpsertLocal(AreaEntry("A", "(USA.OR,*)", "/data[id=c0]"), /*ttl=*/30,
                     0);
  Catalog proj;
  VersionedCatalog replica("B", &proj);
  replica.Apply(origin.DeltaSince({}), /*now=*/0);
  EXPECT_EQ(proj.entries().size(), 1u);

  // Within TTL: nothing expires.
  EXPECT_TRUE(replica.ExpireSilent(20).empty());
  EXPECT_EQ(proj.entries().size(), 1u);
  // Origin silent past its TTL: projection drops its entries; the
  // records (and the version vector) stay for convergence.
  EXPECT_EQ(replica.ExpireSilent(31), std::vector<std::string>{"A"});
  EXPECT_TRUE(proj.entries().empty());
  EXPECT_FALSE(replica.vector().empty());
  EXPECT_EQ(replica.LiveOrigins(31), std::vector<std::string>{"B"});

  // The origin refreshes (heartbeat): entries reappear.
  origin.BumpPresence(30, 40);
  replica.Apply(origin.DeltaSince(replica.vector()), 40);
  EXPECT_EQ(proj.entries().size(), 1u);
  EXPECT_TRUE(replica.ExpireSilent(41).empty());
}

TEST(VersionedCatalogTest, SharedFactSurvivesOneOriginsTombstone) {
  // Two origins assert the same fact; one withdraws — the projection
  // keeps it until the last asserter withdraws too.
  Catalog proj;
  VersionedCatalog replica("C", &proj);
  VersionedCatalog a("A", nullptr), b("B", nullptr);
  a.UpsertLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]"), 0, 0);
  b.UpsertLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]"), 0, 0);
  replica.Apply(a.DeltaSince({}), 0);
  replica.Apply(b.DeltaSince({}), 0);
  EXPECT_EQ(proj.entries().size(), 1u);  // Catalog dedups exact duplicates
  a.TombstoneLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]"), 1);
  replica.Apply(a.DeltaSince(replica.vector()), 1);
  EXPECT_EQ(proj.entries().size(), 1u);  // B still asserts it
  b.TombstoneLocal(AreaEntry("S", "(USA.OR,*)", "/data[id=c0]"), 2);
  replica.Apply(b.DeltaSince(replica.vector()), 2);
  EXPECT_TRUE(proj.entries().empty());
}

sync::SyncOptions FastSync(uint64_t seed, double horizon) {
  sync::SyncOptions o;
  o.gossip_interval_seconds = 5;
  o.refresh_interval_seconds = 15;
  o.entry_ttl_seconds = 45;
  o.horizon_seconds = horizon;
  // Quiet tail: heartbeats stop at 2/3 of the horizon so the last stamps
  // can finish propagating before ticks stop (convergence checks).
  o.refresh_horizon_seconds = horizon * 2 / 3;
  o.seed = seed;
  return o;
}

TEST(SyncAgentTest, TwoPeerGossipConverges) {
  net::Simulator sim;
  PeerOptions ao;
  ao.name = "a";
  ao.roles.base = true;
  Peer a(&sim, ao);
  a.PublishCollection("c0", ns::MakeArea({"USA/OR/Portland", "Music"}),
                      algebra::ItemSet{});
  PeerOptions bo;
  bo.name = "b";
  bo.roles.index = true;
  bo.interest = ns::MakeArea({"USA/OR", "*"});
  Peer b(&sim, bo);
  a.AddBootstrap(b.address());
  a.EnableSync(FastSync(1, 60));
  b.EnableSync(FastSync(2, 60));
  sim.Run();
  // Both vectors identical; each side's catalog carries the other's facts.
  EXPECT_EQ(a.sync()->versioned().vector(), b.sync()->versioned().vector());
  bool b_knows_a = false;
  for (const auto& e : b.catalog().entries()) {
    if (e.server == a.address()) b_knows_a = true;
  }
  EXPECT_TRUE(b_knows_a);
  bool a_knows_b = false;
  for (const auto& e : a.catalog().entries()) {
    if (e.server == b.address() && e.level == HoldingLevel::kIndex) {
      a_knows_b = true;
    }
  }
  EXPECT_TRUE(a_knows_b);
  EXPECT_GT(a.sync()->counters().digests_sent, 0u);
  EXPECT_GT(b.sync()->counters().records_applied, 0u);
}

TEST(SyncAgentTest, GracefulDepartureTombstonesPropagate) {
  net::Simulator sim;
  PeerOptions ao;
  ao.name = "a";
  ao.roles.base = true;
  Peer a(&sim, ao);
  a.PublishCollection("c0", ns::MakeArea({"USA/OR/Portland", "Music"}),
                      algebra::ItemSet{});
  PeerOptions bo;
  bo.name = "b";
  bo.roles.index = true;
  bo.interest = ns::MakeArea({"USA/OR", "*"});
  Peer b(&sim, bo);
  a.AddBootstrap(b.address());
  a.EnableSync(FastSync(3, 40));
  b.EnableSync(FastSync(4, 40));
  sim.Run(20);
  bool b_knows_a = false;
  for (const auto& e : b.catalog().entries()) {
    if (e.server == a.address()) b_knows_a = true;
  }
  ASSERT_TRUE(b_knows_a);
  // A departs gracefully: the goodbye delta tombstones its facts at B,
  // and B prunes A from its partner pool.
  a.LeaveNetwork();
  sim.Run(25);
  for (const auto& e : b.catalog().entries()) {
    EXPECT_NE(e.server, a.address());
  }
  EXPECT_EQ(b.sync()->peers().count(a.address()), 0u);
  // A rejoins: it still holds its data, so the rejoin re-asserts it with
  // fresh stamps that overwrite the tombstones key-for-key.
  a.RejoinNetwork();
  sim.Run();
  bool b_knows_a_again = false;
  for (const auto& e : b.catalog().entries()) {
    if (e.server == a.address()) b_knows_a_again = true;
  }
  EXPECT_TRUE(b_knows_a_again);
}

// Builds a garage-sale network with sync enabled on every peer.
workload::GarageSaleNetwork BuildSyncedNetwork(net::Transport* sim,
                                               size_t sellers, uint64_t seed,
                                               double horizon) {
  workload::GarageSaleNetworkParams params;
  params.num_sellers = sellers;
  params.items_per_seller = 4;
  params.seed = seed;
  auto net = workload::BuildGarageSaleNetwork(sim, params);
  std::vector<Peer*> all{net.client, net.top_meta};
  all.insert(all.end(), net.index_servers.begin(), net.index_servers.end());
  all.insert(all.end(), net.sellers.begin(), net.sellers.end());
  for (Peer* p : all) {
    p->EnableSync(FastSync(100 + p->id(), horizon));
  }
  return net;
}

TEST(SyncAgentTest, QueryCompletesWhileResolverFailsAndRecovers) {
  net::Simulator sim;
  auto net = BuildSyncedNetwork(&sim, 10, 91, /*horizon=*/180);
  sim.Run(90);  // let gossip spread the catalogs
  // The client's only bootstrap — its resolver for everything — dies.
  sim.Fail(net.top_meta->id());
  QueryOutcome outcome;
  bool done = false;
  const auto area = *ns::InterestArea::Parse("(USA.OR,*)");
  net.client->SubmitQuery(workload::MakeAreaQueryPlan(area),
                          [&](const QueryOutcome& o) {
                            outcome = o;
                            done = true;
                          });
  sim.Run(100);
  // Without sync this query dead-ends at the failed bootstrap (see
  // RobustnessTest.FailedMetaServerStrandsQueryWithoutCrash); the
  // gossiped catalog routes around it.
  ASSERT_TRUE(done);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.items.size(), workload::GarageSaleGenerator::CountInArea(
                                      net.all_items, area));
  // The resolver recovers mid-run and catches back up with gossip.
  sim.Recover(net.top_meta->id());
  net.top_meta->RejoinNetwork();
  sim.Run();
  EXPECT_EQ(net.top_meta->sync()->versioned().vector(),
            net.client->sync()->versioned().vector());
}

TEST(ChurnScenarioTest, ConvergesAndStaysDeterministic) {
  auto run_once = [](uint64_t seed) {
    net::Simulator sim;
    workload::GarageSaleNetworkParams params;
    params.num_sellers = 10;
    params.items_per_seller = 3;
    params.seed = seed;
    auto net = workload::BuildGarageSaleNetwork(&sim, params);
    workload::ChurnParams churn;
    churn.seed = seed;
    churn.duration_seconds = 80;
    churn.event_interval_seconds = 8;
    churn.downtime_seconds = 20;
    churn.query_interval_seconds = 20;
    churn.convergence_tail_seconds = 80;
    churn.sync.gossip_interval_seconds = 4;
    churn.sync.refresh_interval_seconds = 12;
    churn.sync.entry_ttl_seconds = 40;
    workload::ChurnScenario scenario(&sim, &net, churn);
    scenario.EnableSyncEverywhere();
    auto stats = scenario.Run();
    struct Snapshot {
      workload::ChurnStats stats;
      bool converged;
      std::string fingerprint;
      uint64_t messages, bytes;
    } snap;
    snap.stats = stats;
    snap.converged = scenario.VectorsConverged();
    snap.fingerprint = scenario.VectorFingerprint();
    snap.messages = sim.stats().messages;
    snap.bytes = sim.stats().bytes;
    return snap;
  };
  auto a = run_once(5);
  EXPECT_GT(a.stats.fails + a.stats.departs + a.stats.joins, 0u);
  EXPECT_GT(a.stats.queries_submitted, 0u);
  EXPECT_TRUE(a.converged);
  EXPECT_FALSE(a.fingerprint.empty());
  // Bit-reproducible: the same seed gives the identical trace.
  auto b = run_once(5);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.stats.fails, b.stats.fails);
  EXPECT_EQ(a.stats.joins, b.stats.joins);
  EXPECT_EQ(a.stats.queries_complete, b.stats.queries_complete);
}

}  // namespace
}  // namespace mqp
